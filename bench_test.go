package imdpp

// bench_test.go regenerates every table and figure of the paper's
// evaluation as a testing.B benchmark (DESIGN.md §4 maps ids to
// drivers). Benchmarks run the figure at a reduced dataset scale and
// Monte-Carlo budget so `go test -bench=.` completes on a laptop; the
// full-scale runs go through cmd/imdppbench. Key outcomes are attached
// as benchmark metrics so `-bench` output records the reproduced
// numbers alongside the timings.

import (
	"sort"
	"testing"

	"imdpp/internal/dataset"
	"imdpp/internal/exp"
)

// benchCfg is the reduced-budget harness configuration for benchmarks.
func benchCfg() exp.Config {
	return exp.Config{
		Scale:        0.25,
		EvalMC:       16,
		SolverMC:     8,
		SolverMCSI:   4,
		CandidateCap: 96,
		Seed:         1,
	}
}

func BenchmarkTableII_DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.TableII(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("want 4 datasets, got %d", len(rows))
		}
	}
}

func BenchmarkTableIII_ClassStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exp.TableIII(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatalf("want 5 classes, got %d", len(rows))
		}
	}
}

func BenchmarkFig8a_SmallBudgetVsOPT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := exp.Fig8a(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := fig.At(exp.AlgoDysim, 100); ok {
			b.ReportMetric(v, "sigmaDysim@b=100")
		}
	}
}

func BenchmarkFig8b_SmallPromosVsOPT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := exp.Fig8b(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := fig.At(exp.AlgoDysim, 3); ok {
			b.ReportMetric(v, "sigmaDysim@T=3")
		}
	}
}

func benchFig9Influence(b *testing.B, ds string) {
	for i := 0; i < b.N; i++ {
		fig, _, err := exp.Fig9Influence(benchCfg(), ds)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := fig.At(exp.AlgoDysim, 500); ok {
			b.ReportMetric(v, "sigmaDysim@b=500")
		}
	}
}

func BenchmarkFig9a_InfluenceYelp(b *testing.B)   { benchFig9Influence(b, "Yelp") }
func BenchmarkFig9b_InfluenceAmazon(b *testing.B) { benchFig9Influence(b, "Amazon") }
func BenchmarkFig9c_InfluenceDouban(b *testing.B) { benchFig9Influence(b, "Douban") }

func BenchmarkFig9d_TimeVsBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, timeFig, err := exp.Fig9Influence(benchCfg(), "Amazon")
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := timeFig.At(exp.AlgoDysim, 500); ok {
			b.ReportMetric(v, "secDysim@b=500")
		}
	}
}

func benchFig9VsT(b *testing.B, ds string) {
	for i := 0; i < b.N; i++ {
		fig, _, err := exp.Fig9VsT(benchCfg(), ds)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := fig.At(exp.AlgoDysim, 20); ok {
			b.ReportMetric(v, "sigmaDysim@T=20")
		}
	}
}

func BenchmarkFig9e_InfluenceVsT_Yelp(b *testing.B)   { benchFig9VsT(b, "Yelp") }
func BenchmarkFig9f_InfluenceVsT_Amazon(b *testing.B) { benchFig9VsT(b, "Amazon") }

func BenchmarkFig9g_TimeVsT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, timeFig, err := exp.Fig9VsT(benchCfg(), "Amazon")
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := timeFig.At(exp.AlgoDysim, 40); ok {
			b.ReportMetric(v, "secDysim@T=40")
		}
	}
}

func BenchmarkFig9h_TimeAcrossDatasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig9h(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10_Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ds := range []string{"Yelp", "Amazon"} {
			if _, err := exp.Fig10VsBudget(benchCfg(), ds); err != nil {
				b.Fatal(err)
			}
			if _, err := exp.Fig10VsT(benchCfg(), ds); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig11_MarketOrders(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ds := range []string{"Yelp", "Amazon"} {
			if _, err := exp.Fig11VsBudget(benchCfg(), ds); err != nil {
				b.Fatal(err)
			}
			if _, err := exp.Fig11VsT(benchCfg(), ds); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig12_EmpiricalStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := exp.Fig12(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := fig.At(exp.AlgoDysim, 1); ok {
			b.ReportMetric(v, "selectionsClassA")
		}
	}
}

func BenchmarkFig13_MetaGraphs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ds := range []string{"Yelp", "Gowalla", "Amazon", "Douban"} {
			if _, err := exp.Fig13(benchCfg(), ds); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig14_ThetaSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ds := range []string{"Yelp", "Gowalla", "Amazon", "Douban"} {
			if _, err := exp.Fig14(benchCfg(), ds, []int{1, 2, 4, 8}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkCaseStudies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs, err := exp.CaseStudies(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		holds := 0
		for _, c := range cs {
			if c.Holds() {
				holds++
			}
		}
		b.ReportMetric(float64(holds), "caseStudiesHolding")
	}
}

// BenchmarkSigmaEstimate measures the raw Monte-Carlo estimator — the
// inner loop every solver pays for (not a paper figure; an engineering
// baseline for the harness itself).
func BenchmarkSigmaEstimate(b *testing.B) {
	d, err := dataset.Amazon(0.35)
	if err != nil {
		b.Fatal(err)
	}
	p := d.Clone(500, 10)
	est := NewEstimator(p, 24, 7)
	seeds := []Seed{{User: 1, Item: 0, T: 1}, {User: 2, Item: 1, T: 2}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Sigma(seeds)
	}
}

// nomineeUniverse builds the single-seed candidate groups the solver's
// initial-gains pass scores: one group per (user, item) pair with
// positive out-degree and preference, top-k by the cheap prior used in
// candidateUniverse, seeded at t=1.
func nomineeUniverse(b *testing.B, p *Problem, k int) [][]Seed {
	b.Helper()
	type scored struct {
		u, x  int
		score float64
	}
	var all []scored
	for u := 0; u < p.NumUsers(); u++ {
		deg := float64(p.G.OutDegree(u))
		if deg == 0 {
			continue
		}
		for x := 0; x < p.NumItems(); x++ {
			pr := p.BasePrefOf(u, x)
			if pr <= 0 || p.CostOf(u, x) > p.Budget {
				continue
			}
			all = append(all, scored{u, x, deg * p.Importance[x] * pr / (p.CostOf(u, x) + 1e-9)})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		if all[i].u != all[j].u {
			return all[i].u < all[j].u
		}
		return all[i].x < all[j].x
	})
	if len(all) > k {
		all = all[:k]
	}
	groups := make([][]Seed, len(all))
	for i, sc := range all {
		groups[i] = []Seed{{User: sc.u, Item: sc.x, T: 1}}
	}
	return groups
}

// nomineeBenchWorkers pins both arms of the batched-vs-sequential
// comparison to the same multi-worker pool, the shape the solver runs
// in deployment (Workers=0 → GOMAXPROCS). A fixed count keeps the
// comparison identical on single-core CI runners, where GOMAXPROCS=1
// would otherwise hide the per-call pool spin-up that batching
// removes.
const nomineeBenchWorkers = 4

func nomineeBenchSetup(b *testing.B) (*Problem, [][]Seed) {
	b.Helper()
	d, err := dataset.Amazon(1.0)
	if err != nil {
		b.Fatal(err)
	}
	p := d.Clone(500, 10)
	// 512 candidates = the solver's default CandidateCap
	return p, nomineeUniverse(b, p, 512)
}

// BenchmarkEstimateNomineesSequential scores the nominee universe the
// pre-batching way: one Estimator.Run per candidate, each paying its
// own pool spin-up.
func BenchmarkEstimateNomineesSequential(b *testing.B) {
	p, groups := nomineeBenchSetup(b)
	est := NewEstimator(p, 24, 7)
	est.Workers = nomineeBenchWorkers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range groups {
			est.Run(g, nil, false)
		}
	}
	b.ReportMetric(float64(len(groups)), "candidates")
}

// BenchmarkEstimateNomineesBatched scores the same universe through
// RunBatch: one worker pool for the whole batch, common random numbers
// across candidates. Estimates are bit-identical to the sequential
// loop (see TestRunBatchMatchesRun).
func BenchmarkEstimateNomineesBatched(b *testing.B) {
	p, groups := nomineeBenchSetup(b)
	est := NewEstimator(p, 24, 7)
	est.Workers = nomineeBenchWorkers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.RunBatch(groups, nil)
	}
	b.ReportMetric(float64(len(groups)), "candidates")
}

// BenchmarkSolveAmazon is the end-to-end solver on the Amazon preset
// at full scale — the headline number the batch engine moves.
func BenchmarkSolveAmazon(b *testing.B) {
	d, err := dataset.Amazon(1.0)
	if err != nil {
		b.Fatal(err)
	}
	p := d.Clone(500, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(p, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(sol.Sigma, "sigma")
			b.ReportMetric(float64(sol.Stats.SamplesSimulated), "samples")
		}
	}
}

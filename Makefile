# CI and humans run the same targets; see .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test race bench fmt fmt-check vet smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The estimator's worker pool and state pooling are the code a race
# detector should watch; -short skips the full-scale solves.
race:
	$(GO) test -race -short ./...

# Single-shot benchmark pass: batched vs sequential nominee scoring,
# raw σ estimation and the end-to-end Amazon solve.
bench:
	$(GO) test -run '^$$' -bench 'Estimate|Solve' -benchtime 1x .

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Tiny-scale solver smoke: exercises the full Dysim pipeline and emits
# the machine-readable BENCH_solve.json perf record.
smoke:
	$(GO) run ./cmd/imdppbench -fig solve -preset Amazon -scale 0.05 -mc 8 -benchout BENCH_solve.json
	@test -s BENCH_solve.json && echo "BENCH_solve.json written"

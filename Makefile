# CI and humans run the same targets; see .github/workflows/ci.yml.

GO ?= go
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: all build test race bench fmt fmt-check vet lint smoke serve-smoke load-smoke shard-smoke fleet-smoke sketch-smoke gridcache-smoke docs-check bench-diff fuzz

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The estimator's worker pool and state pooling are the code a race
# detector should watch; -short skips the full-scale solves.
race:
	$(GO) test -race -short ./...

# Single-shot benchmark pass: batched vs sequential nominee scoring,
# raw σ estimation and the end-to-end Amazon solve.
bench:
	$(GO) test -run '^$$' -bench 'Estimate|Solve' -benchtime 1x .

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# staticcheck, pinned for reproducible CI; falls back to an installed
# binary when the toolchain has no module download access.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	fi

# Tiny-scale solver smoke: exercises the full Dysim pipeline and emits
# the machine-readable BENCH_solve.json perf record.
smoke:
	$(GO) run ./cmd/imdppbench -fig solve -preset Amazon -scale 0.05 -mc 8 -benchout BENCH_solve.json
	@test -s BENCH_solve.json && echo "BENCH_solve.json written"

# Serving-layer smoke: boots imdppd on a random port, solves, asserts
# the cache-hit + cancel contracts end to end, and appends the service
# throughput record to BENCH_serve.json.
serve-smoke:
	./scripts/serve_smoke.sh

# Concurrent-client load smoke (DESIGN.md §11): N distinct-seeded
# solves contending for the daemon's worker pool, asserting the
# queue-wait and solve-wall latency histograms observed every client
# and appending the p50/p99 tail-latency record to BENCH_serve.json.
load-smoke:
	./scripts/load_smoke.sh

# Sharded-estimation smoke: boots two estimator workers plus binary-
# and JSON-codec coordinators on random ports, asserts σ and a full
# solve are bit-identical to a single-process daemon in both codecs,
# that the binary codec cuts wire bytes ≥3×, and appends codec-tagged
# shard throughput to BENCH_shard.json.
shard-smoke:
	./scripts/shard_smoke.sh

# Elastic-fleet smoke (DESIGN.md §13): a dynamic coordinator plus
# three self-registering workers survive a kill -9 mid-solve, a
# SIGTERM graceful drain, and a rejoin — every σ bit-identical to a
# single-process daemon, zero failed jobs, registration-time codec
# negotiation asserted, SIGHUP quota reload applied live. Appends a
# kind:"fleet" record to BENCH_shard.json.
fleet-smoke:
	./scripts/fleet_smoke.sh

# RR-sketch accuracy/throughput harness (DESIGN.md §9): per synthetic
# preset, asserts sketch σ within the additive ε·n·W contract of the
# MC ground truth and ≥5× σ-query throughput on the largest preset,
# appending the error/throughput records to BENCH_sketch.json.
sketch-smoke:
	$(GO) run ./cmd/imdppbench -fig sketch -scale 0.5 -evalmc 48 -sketchout BENCH_sketch.json
	@test -s BENCH_sketch.json && echo "BENCH_sketch.json written"

# Sample-grid memoization smoke (DESIGN.md §10): one CELF-heavy solve
# cold (empty grid cache) and once warm, asserting bit-identical
# results and a ≥1.5× warm speedup, appending the speedup/hit-rate
# record to BENCH_gridcache.json.
gridcache-smoke:
	$(GO) run ./cmd/imdppbench -fig gridcache -preset Amazon -scale 0.05 -mc 8 -gridout BENCH_gridcache.json
	@test -s BENCH_gridcache.json && echo "BENCH_gridcache.json written"

# Docs lint: internal/* doc.go package comments present, DESIGN.md §
# anchors referenced from code exist, README documents every imdppd
# route. --self-test proves the gate can fail.
docs-check:
	./scripts/docs_check.sh
	./scripts/docs_check.sh --self-test

# Perf-trajectory diff: warn (fail-soft) when the freshest
# samples_per_sec in a bench record dropped >10% against the previous
# one (CI artifact via BENCH_PREV_DIR, else HEAD, else in-file).
bench-diff:
	./scripts/bench_diff.sh BENCH_solve.json BENCH_serve.json BENCH_shard.json BENCH_sketch.json BENCH_gridcache.json

# Short fuzz pass over every wire-codec decoder (the seed corpora are
# committed under */testdata/fuzz).
fuzz:
	$(GO) test ./internal/wirebin -run '^FuzzReader$$' -fuzz '^FuzzReader$$' -fuzztime 10s
	$(GO) test ./internal/diffusion -run '^FuzzSampleGridCodec$$' -fuzz '^FuzzSampleGridCodec$$' -fuzztime 10s
	$(GO) test ./internal/gridcache -run '^FuzzGroupKeyCodec$$' -fuzz '^FuzzGroupKeyCodec$$' -fuzztime 10s
	$(GO) test ./internal/graph -run '^FuzzDecodeBinaryExport$$' -fuzz '^FuzzDecodeBinaryExport$$' -fuzztime 10s
	$(GO) test ./internal/shard -run '^FuzzDecodeProblemUploadBinary$$' -fuzz '^FuzzDecodeProblemUploadBinary$$' -fuzztime 10s
	$(GO) test ./internal/shard -run '^FuzzDecodeEstimateResponseBinary$$' -fuzz '^FuzzDecodeEstimateResponseBinary$$' -fuzztime 10s

// Package imdpp is a Go implementation of Influence Maximization based
// on Dynamic Personal Perception in Knowledge Graphs (IMDPP) and of
// the Dysim approximation algorithm, reproducing Teng et al.,
// ICDE 2021 (arXiv:2010.07125).
//
// IMDPP plans a campaign of T promotions over a social network: which
// items to promote, which users to hire as seeds (each with its own
// cost, under a total budget), and at which promotion to start each
// seed, maximizing the importance-weighted expected number of
// adoptions. The diffusion model couples four dynamic factors driven
// by a knowledge graph and per-user weighted meta-graphs: personal
// perception of complementary/substitutable item relationships,
// preference for items, social influence strength, and item
// associations.
//
// # Quickstart
//
//	d, _ := imdpp.AmazonDataset(1.0)       // synthetic Amazon-shaped workload
//	p := d.Clone(500, 10)                  // budget 500, 10 promotions
//	sol, _ := imdpp.Solve(p, imdpp.Options{})
//	est := imdpp.NewEstimator(p, 200, 42)
//	fmt.Println(est.Sigma(sol.Seeds))      // importance-aware influence
//
// The subpackages under internal implement the substrates (social
// graph, knowledge graph, personal item networks, diffusion engine,
// MIOA, clustering, baselines, datasets, experiment harness); this
// package re-exports the surface a downstream user needs.
package imdpp

import (
	"context"
	"fmt"
	"strings"

	"imdpp/internal/baselines"
	"imdpp/internal/core"
	"imdpp/internal/dataset"
	"imdpp/internal/diffusion"
	"imdpp/internal/exp"
	"imdpp/internal/gridcache"
	"imdpp/internal/obs"
	"imdpp/internal/service"
	"imdpp/internal/shard"
	"imdpp/internal/sketch"
)

// Core problem and diffusion types.
type (
	// Problem is one IMDPP instance: social network, knowledge graph,
	// meta-graph model, importances, preferences, costs, budget and T.
	Problem = diffusion.Problem
	// Seed is one (user, item, promotion) element of a seed group.
	Seed = diffusion.Seed
	// Params are the diffusion-model hyper-parameters.
	Params = diffusion.Params
	// Estimator is the Monte-Carlo influence estimator.
	Estimator = diffusion.Estimator
	// Estimate is one Monte-Carlo estimate (σ, π, per-item adoptions).
	Estimate = diffusion.Estimate
	// State is one mutable simulation state, for scripted scenarios.
	State = diffusion.State
	// Matrix is the per-(user,item) accessor behind Problem.BasePref
	// and Problem.Cost.
	Matrix = diffusion.Matrix
)

// NewMatrix allocates a zeroed users×items matrix for custom Problems.
func NewMatrix(rows, cols int) Matrix { return diffusion.NewMatrix(rows, cols) }

// MatrixFrom wraps a row-major slice as a Matrix without copying.
func MatrixFrom(data []float64, cols int) Matrix { return diffusion.MatrixFrom(data, cols) }

// Dysim solver types.
type (
	// Options configure the Dysim solver.
	Options = core.Options
	// Solution is a solver result: seeds, cost, σ, markets, stats.
	Solution = core.Solution
	// Market is one identified target market.
	Market = core.Market
	// OrderMetric selects the target-market ordering (AE/PF/SZ/RMS/RD).
	OrderMetric = core.OrderMetric
	// ProgressEvent is one solver progress report (Options.Progress).
	ProgressEvent = core.ProgressEvent
	// InputError is a typed rejection of an out-of-range request
	// field, shared by the CLI front-ends and the serving layer.
	InputError = core.InputError
)

// ValidateRequest rejects a nil problem, negative budget, T < 1 and
// out-of-range Options with typed InputErrors — the single request
// gate shared by Solve, the CLIs and the serving layer.
func ValidateRequest(p *Problem, opt Options) error { return core.ValidateRequest(p, opt) }

// Market ordering metrics (Sec. VI-D of the paper).
const (
	OrderAE  = core.OrderAE
	OrderPF  = core.OrderPF
	OrderSZ  = core.OrderSZ
	OrderRMS = core.OrderRMS
	OrderRD  = core.OrderRD
)

// Baseline types.
type (
	// BaselineOptions configure the baseline solvers.
	BaselineOptions = baselines.Options
	// BaselineSolution is a baseline result.
	BaselineSolution = baselines.Solution
	// OPTOptions bound the brute-force optimum.
	OPTOptions = baselines.OPTOptions
)

// Dataset types.
type (
	// Dataset bundles a generated problem with its spec.
	Dataset = dataset.Dataset
	// DatasetSpec parameterises a synthetic dataset.
	DatasetSpec = dataset.Spec
	// DatasetStats is a Table II row.
	DatasetStats = dataset.Stats
	// Scale multiplies preset dataset sizes.
	Scale = dataset.Scale
)

// Experiment harness types.
type (
	// ExpConfig tunes the figure/table reproduction harness.
	ExpConfig = exp.Config
	// Figure is one reproduced plot.
	Figure = exp.Figure
	// CaseStudy is one Sec. VI-F qualitative dynamic.
	CaseStudy = exp.CaseStudy
)

// DefaultParams returns the diffusion defaults documented in DESIGN.md.
func DefaultParams() Params { return diffusion.DefaultParams() }

// Solve runs Dysim on the problem.
func Solve(p *Problem, opt Options) (Solution, error) { return core.Solve(p, opt) }

// SolveCtx is Solve with cancellation: the solver aborts within about
// one campaign simulation of ctx firing and returns ctx.Err(). A
// completed solve is bit-identical to Solve.
func SolveCtx(ctx context.Context, p *Problem, opt Options) (Solution, error) {
	return core.SolveCtx(ctx, p, opt)
}

// SolveAdaptive runs the adaptive variant of Dysim (Sec. V-D: no
// predefined budget allocation across promotions).
func SolveAdaptive(p *Problem, opt Options) (Solution, error) { return core.SolveAdaptive(p, opt) }

// SolveAdaptiveCtx is SolveAdaptive with cancellation, under the same
// contract as SolveCtx.
func SolveAdaptiveCtx(ctx context.Context, p *Problem, opt Options) (Solution, error) {
	return core.SolveAdaptiveCtx(ctx, p, opt)
}

// NewEstimator creates a Monte-Carlo influence estimator with m
// samples and the given master seed.
func NewEstimator(p *Problem, m int, seed uint64) *Estimator {
	return diffusion.NewEstimator(p, m, seed)
}

// NewState allocates a simulation state for scripted scenarios.
func NewState(p *Problem) *State { return diffusion.NewState(p) }

// Baselines.
var (
	// BGRD is the utility-driven bundle baseline [38].
	BGRD = baselines.BGRD
	// HAG is the user-item pair greedy baseline [37].
	HAG = baselines.HAG
	// PS is the path-based single-seed baseline [35].
	PS = baselines.PS
	// DRHGA is the per-item greedy baseline [19].
	DRHGA = baselines.DRHGA
	// OPT is the bounded brute-force optimum.
	OPT = baselines.OPT
)

// Dataset builders (synthetic, Table II / Table III shaped).
var (
	// AmazonDataset builds the Amazon-shaped dataset at the scale.
	AmazonDataset = dataset.Amazon
	// YelpDataset builds the Yelp-shaped dataset.
	YelpDataset = dataset.Yelp
	// DoubanDataset builds the Douban-shaped dataset.
	DoubanDataset = dataset.Douban
	// GowallaDataset builds the Gowalla-shaped dataset.
	GowallaDataset = dataset.Gowalla
	// AmazonSampleDataset builds the 100-user sample used against OPT.
	AmazonSampleDataset = dataset.AmazonSample
	// GenerateDataset builds a dataset from a custom spec.
	GenerateDataset = dataset.Generate
	// BuildClass builds one empirical-study class (Table III).
	BuildClass = dataset.BuildClass
	// ClassSpecs returns the Table III class sizes.
	ClassSpecs = dataset.ClassSpecs
	// CourseName resolves a course item id to its human-readable name.
	CourseName = dataset.CourseName
)

// LoadDataset resolves a preset dataset by name — "amazon", "yelp",
// "douban", "gowalla" or "sample" (the 100-user Amazon sample; its
// scale is fixed) — at the given scale multiplier. It is the single
// name→dataset mapping shared by the imdpprun CLI and the imdppd
// daemon.
func LoadDataset(name string, scale float64) (*Dataset, error) {
	s := Scale(scale)
	switch strings.ToLower(name) {
	case "amazon":
		return AmazonDataset(s)
	case "yelp":
		return YelpDataset(s)
	case "douban":
		return DoubanDataset(s)
	case "gowalla":
		return GowallaDataset(s)
	case "sample":
		return AmazonSampleDataset()
	default:
		return nil, fmt.Errorf("imdpp: unknown dataset %q (want amazon|yelp|douban|gowalla|sample)", name)
	}
}

// Serving layer (package service): a bounded job queue over a solver
// worker pool with prompt cancellation, a content-addressed LRU
// result cache and in-flight coalescing — the subsystem behind the
// imdppd daemon.
type (
	// Service runs campaign solves asynchronously.
	Service = service.Service
	// ServiceConfig sizes the service (workers, queue, cache).
	ServiceConfig = service.Config
	// ServiceRequest is one solve submission.
	ServiceRequest = service.Request
	// ServiceMetrics is a snapshot of the service counters.
	ServiceMetrics = service.Metrics
	// Job is one asynchronous solve tracked by a Service.
	Job = service.Job
	// JobView is the JSON-able snapshot of a Job.
	JobView = service.JobView
	// JobStatus is the lifecycle state of a Job.
	JobStatus = service.Status
	// SolveKey is the 128-bit content address of a solve request.
	SolveKey = service.Key
	// TenantQuota bounds one tenant's share of the service: DRR weight,
	// queue depth and in-flight concurrency (DESIGN.md §12).
	TenantQuota = service.TenantQuota
	// TenantMetrics is one tenant's scheduling counters (/metrics "tenants").
	TenantMetrics = service.TenantMetrics
	// QuotaError is a typed shed rejection bearing a Retry-After
	// estimate; it satisfies errors.Is(err, ErrQueueFull).
	QuotaError = service.QuotaError
	// JobEvent is one entry in a job's retained event log — the payload
	// of the daemon's SSE stream.
	JobEvent = service.Event
)

// DefaultTenant is the tenant requests without one are accounted under.
const DefaultTenant = service.DefaultTenant

// QuotaError shed codes.
const (
	ShedQueueFull     = service.ShedQueueFull
	ShedQuotaExceeded = service.ShedQuotaExceeded
)

// ParseTenantQuotas parses the -tenant-quotas flag syntax
// (name:weight[:max_queue[:max_inflight]], comma-separated; name
// "default" sets the quota unlisted tenants get) into
// ServiceConfig.Tenants / ServiceConfig.DefaultQuota.
var ParseTenantQuotas = service.ParseTenantQuotas

// Job lifecycle states.
const (
	JobQueued    = service.StatusQueued
	JobRunning   = service.StatusRunning
	JobDone      = service.StatusDone
	JobFailed    = service.StatusFailed
	JobCancelled = service.StatusCancelled
)

// Serving-layer errors and constructors.
var (
	// NewService starts a campaign-solving service.
	NewService = service.New
	// ErrQueueFull rejects submissions beyond the bounded job queue.
	ErrQueueFull = service.ErrQueueFull
	// ErrServiceClosed rejects submissions after Close.
	ErrServiceClosed = service.ErrClosed
	// HashSolveRequest returns the content address of a solve request
	// — the cache/coalescing key, exploiting the determinism contract
	// (DESIGN.md §3).
	HashSolveRequest = service.HashRequest
	// HashProblem returns the content address of a Problem alone — the
	// key the shard subsystem uploads problems to workers under.
	HashProblem = service.HashProblem
)

// Sharded estimation (package shard, DESIGN.md §7): fan σ/π batches
// out over remote estimator workers, bit-identical to single-process.
type (
	// SolverEstimator is the estimation-backend interface the solver
	// pipeline consumes (Options.Backend / ServiceConfig.Backend).
	SolverEstimator = core.Estimator
	// EstimatorFactory constructs the estimation backend for one
	// solver run.
	EstimatorFactory = core.EstimatorFactory
	// ShardPool is the coordinator-side worker registry: health
	// checks, per-shard retry, failover re-dispatch, local fallback.
	ShardPool = shard.Pool
	// ShardPoolStats is the registry snapshot (/metrics "shard").
	ShardPoolStats = shard.PoolStats
	// ShardWorker is the worker-process side of the estimator RPC.
	ShardWorker = shard.Worker
	// ShardWorkerConfig sizes a shard worker.
	ShardWorkerConfig = shard.WorkerConfig
	// ShardWorkerStats is the worker-side counter snapshot.
	ShardWorkerStats = shard.WorkerStats
	// ShardWorkerCaps is the capability advertisement a worker sends at
	// registration — codec version, traced-frame support, capacity hint
	// — so mixed fleets negotiate once instead of probing per request
	// (DESIGN.md §13).
	ShardWorkerCaps = shard.WorkerCaps
	// ShardRegistrar is the worker-side fleet-membership loop:
	// register, heartbeat, re-register across coordinator restarts,
	// deregister on drain (DESIGN.md §13).
	ShardRegistrar = shard.Registrar
	// ShardRegistrarConfig configures a ShardRegistrar.
	ShardRegistrarConfig = shard.RegistrarConfig
	// ShardFleetStats is the fleet-membership aggregate inside
	// ShardPoolStats (/metrics "shard.fleet").
	ShardFleetStats = shard.FleetStats
)

// Sharded-estimation constructors.
var (
	// LocalEstimator is the default EstimatorFactory: the in-process
	// batch engine.
	LocalEstimator = core.LocalEstimator
	// NewShardPool registers remote estimator workers by base URL.
	NewShardPool = shard.NewPool
	// ShardBackend returns the EstimatorFactory dispatching over a
	// pool — plug it into Options.Backend or ServiceConfig.Backend to
	// run any solve over the worker fleet.
	ShardBackend = shard.Backend
	// NewShardWorker creates the worker-side RPC state (imdppd -worker
	// mounts it).
	NewShardWorker = shard.NewWorker
	// NewShardEstimator creates one sharded estimator directly.
	NewShardEstimator = shard.NewEstimator
	// NewShardRegistrar builds the worker-side fleet-membership loop
	// (imdppd -worker -register wires it).
	NewShardRegistrar = shard.NewRegistrar
	// DefaultShardWorkerCaps advertises this binary's native
	// capabilities: current codec version, traced frames, GOMAXPROCS.
	DefaultShardWorkerCaps = shard.DefaultWorkerCaps
)

// Sample-grid memoization (package gridcache, DESIGN.md §10): a
// bounded, byte-accounted cache of raw per-sample outcome grids keyed
// by (problem, seed, sample range, canonical seed group). Because a
// sample grid is a pure function of those coordinates (§3), a cached
// grid is a bit-exact substitute for re-simulation — CELF waves,
// repeated jobs and shard re-dispatch reuse each other's work.
type (
	// GridCache memoizes raw sample grids across solves.
	GridCache = gridcache.Cache
	// GridCacheConfig sizes a GridCache.
	GridCacheConfig = gridcache.Config
	// GridCacheStats is the cache counter snapshot (/metrics "grid").
	GridCacheStats = gridcache.Stats
)

// NewGridCache creates a sample-grid cache bounded at maxMB MiB
// (0 → 64), spilling committed grids under dir when non-empty. Plug it
// into Options.GridCache, ServiceConfig (via GridCacheMB/GridCacheDir)
// or ShardWorkerConfig.Grid.
func NewGridCache(maxMB int, dir string) *GridCache {
	if maxMB <= 0 {
		maxMB = 64
	}
	return gridcache.New(gridcache.Config{
		MaxBytes: int64(maxMB) << 20,
		Dir:      dir,
		KeyFn:    func(p *diffusion.Problem) string { return service.HashProblem(p).String() },
	})
}

// Approximate estimation (package sketch, DESIGN.md §9): a reverse-
// reachable-sketch backend answering σ queries by coverage counting
// within an (ε, δ) contract — selected per request via
// Options.Epsilon, or explicitly via SketchBackend.
type (
	// SketchConfig configures the sketch estimator backend.
	SketchConfig = sketch.Config
	// SketchParams identify one sketch build (ε, δ, seed).
	SketchParams = sketch.Params
	// Sketch is one immutable RR-sample index.
	Sketch = sketch.Sketch
	// SketchCache shares built sketch indexes (ServiceConfig wires one
	// automatically; library callers may pass their own).
	SketchCache = sketch.Cache
	// SigmaOptions configure a synchronous Service.Sigma evaluation.
	SigmaOptions = service.SigmaOptions
)

// Backend labels reported by Service.Sigma and job snapshots.
const (
	BackendMC     = service.BackendMC
	BackendSketch = service.BackendSketch
)

// Sketch constructors.
var (
	// SketchBackend returns the EstimatorFactory over the RR-sketch
	// hybrid estimator.
	SketchBackend = core.SketchBackend
	// NewSketchEstimator creates one sketch-backed estimator directly.
	NewSketchEstimator = sketch.New
	// BuildSketch builds one RR index eagerly.
	BuildSketch = sketch.Build
	// NewSketchCache creates a sketch index cache (optionally
	// disk-persistent).
	NewSketchCache = sketch.NewCache
	// SketchTheta returns the RR sample count for an (ε, δ) contract.
	SketchTheta = sketch.Theta
)

// Observability (package obs, DESIGN.md §11): span tracing across the
// solve → shard → cache pipeline plus fixed-bucket latency histograms.
// Purely observational — enabling a Tracer never changes a solver
// result bit (the same exclusion §3 grants Progress callbacks).
type (
	// Tracer records recent traces in a bounded ring; plug one into
	// ServiceConfig.Tracer (coordinator) or ShardWorkerConfig.Tracer
	// (worker). Its Handler serves GET /debug/traces.
	Tracer = obs.Tracer
	// Trace is one recorded trace: a root id plus its span records.
	Trace = obs.Trace
	// SpanRec is one finished span (also the shard-wire span form).
	SpanRec = obs.SpanRec
	// HistStats is a latency histogram snapshot (count, mean, p50/p95/p99).
	HistStats = obs.HistStats
	// LatencyMetrics is the /metrics "latency" block.
	LatencyMetrics = service.LatencyMetrics
	// PhaseTiming is one per-phase wall-clock entry on a job snapshot.
	PhaseTiming = service.PhaseTiming
)

// NewTracer creates a trace recorder holding the most recent traces.
var NewTracer = obs.NewTracer

// Package imdpp is a Go implementation of Influence Maximization based
// on Dynamic Personal Perception in Knowledge Graphs (IMDPP) and of
// the Dysim approximation algorithm, reproducing Teng et al.,
// ICDE 2021 (arXiv:2010.07125).
//
// IMDPP plans a campaign of T promotions over a social network: which
// items to promote, which users to hire as seeds (each with its own
// cost, under a total budget), and at which promotion to start each
// seed, maximizing the importance-weighted expected number of
// adoptions. The diffusion model couples four dynamic factors driven
// by a knowledge graph and per-user weighted meta-graphs: personal
// perception of complementary/substitutable item relationships,
// preference for items, social influence strength, and item
// associations.
//
// # Quickstart
//
//	d, _ := imdpp.AmazonDataset(1.0)       // synthetic Amazon-shaped workload
//	p := d.Clone(500, 10)                  // budget 500, 10 promotions
//	sol, _ := imdpp.Solve(p, imdpp.Options{})
//	est := imdpp.NewEstimator(p, 200, 42)
//	fmt.Println(est.Sigma(sol.Seeds))      // importance-aware influence
//
// The subpackages under internal implement the substrates (social
// graph, knowledge graph, personal item networks, diffusion engine,
// MIOA, clustering, baselines, datasets, experiment harness); this
// package re-exports the surface a downstream user needs.
package imdpp

import (
	"imdpp/internal/baselines"
	"imdpp/internal/core"
	"imdpp/internal/dataset"
	"imdpp/internal/diffusion"
	"imdpp/internal/exp"
)

// Core problem and diffusion types.
type (
	// Problem is one IMDPP instance: social network, knowledge graph,
	// meta-graph model, importances, preferences, costs, budget and T.
	Problem = diffusion.Problem
	// Seed is one (user, item, promotion) element of a seed group.
	Seed = diffusion.Seed
	// Params are the diffusion-model hyper-parameters.
	Params = diffusion.Params
	// Estimator is the Monte-Carlo influence estimator.
	Estimator = diffusion.Estimator
	// Estimate is one Monte-Carlo estimate (σ, π, per-item adoptions).
	Estimate = diffusion.Estimate
	// State is one mutable simulation state, for scripted scenarios.
	State = diffusion.State
	// Matrix is the per-(user,item) accessor behind Problem.BasePref
	// and Problem.Cost.
	Matrix = diffusion.Matrix
)

// NewMatrix allocates a zeroed users×items matrix for custom Problems.
func NewMatrix(rows, cols int) Matrix { return diffusion.NewMatrix(rows, cols) }

// MatrixFrom wraps a row-major slice as a Matrix without copying.
func MatrixFrom(data []float64, cols int) Matrix { return diffusion.MatrixFrom(data, cols) }

// Dysim solver types.
type (
	// Options configure the Dysim solver.
	Options = core.Options
	// Solution is a solver result: seeds, cost, σ, markets, stats.
	Solution = core.Solution
	// Market is one identified target market.
	Market = core.Market
	// OrderMetric selects the target-market ordering (AE/PF/SZ/RMS/RD).
	OrderMetric = core.OrderMetric
)

// Market ordering metrics (Sec. VI-D of the paper).
const (
	OrderAE  = core.OrderAE
	OrderPF  = core.OrderPF
	OrderSZ  = core.OrderSZ
	OrderRMS = core.OrderRMS
	OrderRD  = core.OrderRD
)

// Baseline types.
type (
	// BaselineOptions configure the baseline solvers.
	BaselineOptions = baselines.Options
	// BaselineSolution is a baseline result.
	BaselineSolution = baselines.Solution
	// OPTOptions bound the brute-force optimum.
	OPTOptions = baselines.OPTOptions
)

// Dataset types.
type (
	// Dataset bundles a generated problem with its spec.
	Dataset = dataset.Dataset
	// DatasetSpec parameterises a synthetic dataset.
	DatasetSpec = dataset.Spec
	// DatasetStats is a Table II row.
	DatasetStats = dataset.Stats
	// Scale multiplies preset dataset sizes.
	Scale = dataset.Scale
)

// Experiment harness types.
type (
	// ExpConfig tunes the figure/table reproduction harness.
	ExpConfig = exp.Config
	// Figure is one reproduced plot.
	Figure = exp.Figure
	// CaseStudy is one Sec. VI-F qualitative dynamic.
	CaseStudy = exp.CaseStudy
)

// DefaultParams returns the diffusion defaults documented in DESIGN.md.
func DefaultParams() Params { return diffusion.DefaultParams() }

// Solve runs Dysim on the problem.
func Solve(p *Problem, opt Options) (Solution, error) { return core.Solve(p, opt) }

// SolveAdaptive runs the adaptive variant of Dysim (Sec. V-D: no
// predefined budget allocation across promotions).
func SolveAdaptive(p *Problem, opt Options) (Solution, error) { return core.SolveAdaptive(p, opt) }

// NewEstimator creates a Monte-Carlo influence estimator with m
// samples and the given master seed.
func NewEstimator(p *Problem, m int, seed uint64) *Estimator {
	return diffusion.NewEstimator(p, m, seed)
}

// NewState allocates a simulation state for scripted scenarios.
func NewState(p *Problem) *State { return diffusion.NewState(p) }

// Baselines.
var (
	// BGRD is the utility-driven bundle baseline [38].
	BGRD = baselines.BGRD
	// HAG is the user-item pair greedy baseline [37].
	HAG = baselines.HAG
	// PS is the path-based single-seed baseline [35].
	PS = baselines.PS
	// DRHGA is the per-item greedy baseline [19].
	DRHGA = baselines.DRHGA
	// OPT is the bounded brute-force optimum.
	OPT = baselines.OPT
)

// Dataset builders (synthetic, Table II / Table III shaped).
var (
	// AmazonDataset builds the Amazon-shaped dataset at the scale.
	AmazonDataset = dataset.Amazon
	// YelpDataset builds the Yelp-shaped dataset.
	YelpDataset = dataset.Yelp
	// DoubanDataset builds the Douban-shaped dataset.
	DoubanDataset = dataset.Douban
	// GowallaDataset builds the Gowalla-shaped dataset.
	GowallaDataset = dataset.Gowalla
	// AmazonSampleDataset builds the 100-user sample used against OPT.
	AmazonSampleDataset = dataset.AmazonSample
	// GenerateDataset builds a dataset from a custom spec.
	GenerateDataset = dataset.Generate
	// BuildClass builds one empirical-study class (Table III).
	BuildClass = dataset.BuildClass
	// ClassSpecs returns the Table III class sizes.
	ClassSpecs = dataset.ClassSpecs
	// CourseName resolves a course item id to its human-readable name.
	CourseName = dataset.CourseName
)

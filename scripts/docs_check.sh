#!/usr/bin/env bash
# docs_check.sh — the docs lint behind `make docs-check` (CI: docs job).
#
# The repo's load-bearing invariants (determinism contract, cache
# lanes, wire formats, the §9 accuracy contract) live in prose as much
# as in code. This gate keeps the prose wired to the code:
#
#   1. every internal/* package has a doc.go whose first line is a
#      `// Package <name> ...` comment
#   2. every DESIGN.md section referenced from Go comments (§N) has a
#      matching `## §N ` heading in DESIGN.md
#   3. every HTTP route registered in cmd/imdppd
#      (`HandleFunc("METHOD /path")`) appears in README.md
#
# Usage:
#   scripts/docs_check.sh              # lint the working tree
#   scripts/docs_check.sh --self-test  # prove the gate can fail: copy
#                                      # the tree, break each invariant
#                                      # in turn, assert detection
set -u

repo_root=$(cd "$(dirname "$0")/.." && pwd)

check_tree() {
	local root=$1 fail=0 dir pkg doc first n ref route

	# 1. package docs
	for dir in "$root"/internal/*/; do
		pkg=$(basename "$dir")
		doc="$dir/doc.go"
		if [ ! -f "$doc" ]; then
			echo "docs-check: internal/$pkg: missing doc.go" >&2
			fail=1
			continue
		fi
		first=$(head -n 1 "$doc")
		case "$first" in
		"// Package $pkg "*) ;;
		*)
			echo "docs-check: internal/$pkg/doc.go: first line must be '// Package $pkg ...' (got: $first)" >&2
			fail=1
			;;
		esac
	done

	# 2. DESIGN.md § anchors referenced from Go comments
	for n in $(grep -rhoE '§[0-9]+' --include='*.go' "$root" 2>/dev/null | tr -d '§' | sort -un); do
		if ! grep -q "^## §$n " "$root/DESIGN.md" 2>/dev/null; then
			echo "docs-check: DESIGN.md: no '## §$n ' heading, but §$n is referenced from Go comments:" >&2
			grep -rlE "§$n([^0-9]|\$)" --include='*.go' "$root" | sed "s|^$root/|  |" >&2
			fail=1
		fi
	done

	# 3. daemon routes documented in README (read from a here-string, not
	# a pipe, so the failures survive the loop)
	while IFS= read -r route; do
		[ -z "$route" ] && continue
		if ! grep -qF "$route" "$root/README.md" 2>/dev/null; then
			echo "docs-check: README.md: cmd/imdppd registers '$route' but the README never mentions it" >&2
			fail=1
		fi
	done <<-ROUTES
		$(grep -hoE 'HandleFunc\("[A-Z]+ [^"]+"' "$root"/cmd/imdppd/*.go 2>/dev/null | sed -E 's/HandleFunc\("([^"]+)"/\1/' | sort -u)
	ROUTES

	return $fail
}

self_test() {
	local tmp pass=0
	tmp=$(mktemp -d)
	# expand now: $tmp is a function local, gone by script-exit time
	trap "rm -rf '$tmp'" EXIT

	copy() {
		rm -rf "$tmp/tree"
		mkdir -p "$tmp/tree"
		(cd "$repo_root" && tar -cf - --exclude .git --exclude '.docs_check_fail' .) | tar -xf - -C "$tmp/tree"
	}

	copy
	if ! check_tree "$tmp/tree" >/dev/null 2>&1; then
		echo "docs-check self-test: FAIL — clean tree did not pass" >&2
		check_tree "$tmp/tree" >&2 || true
		return 1
	fi

	copy
	rm "$tmp/tree/internal/sketch/doc.go"
	if check_tree "$tmp/tree" >/dev/null 2>&1; then
		echo "docs-check self-test: FAIL — removing internal/sketch/doc.go went undetected" >&2
		return 1
	fi

	copy
	sed -i 's/^## §9 .*/## (section deliberately removed by self-test)/' "$tmp/tree/DESIGN.md"
	if check_tree "$tmp/tree" >/dev/null 2>&1; then
		echo "docs-check self-test: FAIL — removing the DESIGN.md §9 anchor went undetected" >&2
		return 1
	fi

	copy
	sed -i 's|POST /v1/sigma||g' "$tmp/tree/README.md"
	if check_tree "$tmp/tree" >/dev/null 2>&1; then
		echo "docs-check self-test: FAIL — dropping 'POST /v1/sigma' from README went undetected" >&2
		return 1
	fi

	echo "docs-check self-test: ok (clean tree passes; 3 deliberate breaks detected)"
	return 0
}

case "${1:-}" in
--self-test)
	self_test
	;;
"")
	if check_tree "$repo_root"; then
		echo "docs-check: ok"
	else
		exit 1
	fi
	;;
*)
	echo "usage: $0 [--self-test]" >&2
	exit 2
	;;
esac

#!/usr/bin/env bash
# Perf-trajectory guard: compares the freshest samples_per_sec in each
# given bench JSON against the previous record and annotates (fail-soft
# — CI runners are noisy, so a drop is a warning, never a red build) on
# regressions past the threshold.
#
#   usage: bench_diff.sh FILE...
#   env:   BENCH_DIFF_THRESHOLD  fractional drop that triggers the
#                                warning (default 0.10)
#          BENCH_PREV_DIR        directory holding the previous run's
#                                artifacts (CI downloads the last
#                                successful run's bench-* artifact
#                                here; fail-soft when absent)
#
# Records are compared per `kind` ("default" when absent), so a file
# holding several trajectories — BENCH_serve.json carries both the
# serve-smoke throughput record and the load-smoke tail-latency record
# (kind: "load") — diffs each against its own lineage instead of
# whichever record happens to be last. "Previous" is resolved in
# order: the same-named file under BENCH_PREV_DIR (the previous CI
# artifact), then the file as committed at HEAD, then the
# second-to-last same-kind record of the working file (bench
# trajectories are JSON-lines, so one smoke run appending to a
# pre-existing file carries its own history). Works for both shapes in
# the repo: single-object reports (BENCH_solve.json) and JSON-lines
# trajectories (BENCH_serve.json, BENCH_shard.json).
set -euo pipefail

cd "$(dirname "$0")/.."

THRESHOLD=${BENCH_DIFF_THRESHOLD:-0.10}

# freshest samples_per_sec of one kind in a JSON-lines stream on stdin
last_of_kind() {
    jq -s --arg k "$1" \
        'map(select((.kind // "default") == $k)) | last | .samples_per_sec // empty' \
        2>/dev/null || true
}

for f in "$@"; do
    if [ ! -s "$f" ]; then
        echo "bench-diff: $f missing or empty, skipping"
        continue
    fi
    kinds=$(jq -rs 'map(.kind // "default") | unique | .[]' "$f" 2>/dev/null || true)
    [ -n "$kinds" ] || { echo "bench-diff: $f is not bench JSON, skipping"; continue; }
    for kind in $kinds; do
        label=$f
        [ "$kind" = default ] || label="$f[$kind]"
        cur=$(last_of_kind "$kind" <"$f")
        prev=""
        if [ -n "${BENCH_PREV_DIR:-}" ] && [ -s "${BENCH_PREV_DIR}/$f" ]; then
            prev=$(last_of_kind "$kind" <"${BENCH_PREV_DIR}/$f")
        fi
        if [ -z "$prev" ]; then
            prev=$(git show "HEAD:$f" 2>/dev/null | last_of_kind "$kind" || true)
        fi
        if [ -z "$prev" ]; then
            prev=$(jq -s --arg k "$kind" \
                'map(select((.kind // "default") == $k))
                 | if length > 1 then .[-2].samples_per_sec // empty else empty end' \
                "$f" 2>/dev/null || true)
        fi
        if [ -z "$cur" ] || [ -z "$prev" ]; then
            echo "bench-diff: $label has no comparable samples_per_sec pair (cur='$cur' prev='$prev'), skipping"
            continue
        fi
        verdict=$(jq -n --argjson cur "$cur" --argjson prev "$prev" --argjson thr "$THRESHOLD" '
            if $prev <= 0 then "skip"
            elif $cur < $prev * (1 - $thr) then "drop"
            else "ok" end')
        pct=$(jq -n --argjson cur "$cur" --argjson prev "$prev" \
            'if $prev > 0 then (100 * ($cur - $prev) / $prev | floor) else 0 end')
        case $(echo "$verdict" | tr -d '"') in
            drop)
                # GitHub Actions annotation; plain stderr everywhere else
                echo "::warning file=$f::samples_per_sec dropped ${pct}% ($prev -> $cur), past the ${THRESHOLD} threshold"
                echo "bench-diff: $label REGRESSED ${pct}% ($prev -> $cur)" >&2
                ;;
            ok)
                echo "bench-diff: $label ok (${pct}% change, $prev -> $cur)"
                ;;
            *)
                echo "bench-diff: $label previous record unusable, skipping"
                ;;
        esac
    done
done
exit 0

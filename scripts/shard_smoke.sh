#!/usr/bin/env bash
# Shard smoke: boots one coordinator + two estimator workers on random
# ports, drives a sharded σ evaluation and a full sharded solve over
# HTTP, and asserts both are bit-identical to a plain single-process
# daemon — the DESIGN.md §7 contract made observable end to end. Worker
# health, shard dispatch counters and the coordinator's worker-pool
# depth are checked along the way; the shard throughput record is
# appended to BENCH_shard.json (one JSON object per line).
set -euo pipefail

cd "$(dirname "$0")/.."

WORKDIR=$(mktemp -d)
BIN="$WORKDIR/imdppd"
go build -o "$BIN" ./cmd/imdppd

PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

# boot <logfile> <args...>: starts imdppd, scrapes the readiness line,
# echoes the base URL
boot() {
    local log=$1
    shift
    "$BIN" -addr 127.0.0.1:0 "$@" >"$log" 2>&1 &
    PIDS+=($!)
    local addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's#^imdppd listening on ##p' "$log")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "imdppd ($*) never became ready:" >&2
        cat "$log" >&2
        exit 1
    fi
    echo "$addr"
}

W1=$(boot "$WORKDIR/worker1.log" -worker)
W2=$(boot "$WORKDIR/worker2.log" -worker)
LOCAL=$(boot "$WORKDIR/local.log" -workers 1)
COORD=$(boot "$WORKDIR/coord.log" -workers 1 -shard-workers "$W1,$W2")
echo "workers at $W1 $W2; coordinator at $COORD; local reference at $LOCAL"

curl -sf "$W1/healthz" | jq -e '.ok and .worker' >/dev/null
curl -sf "$COORD/metrics" | jq -e '.shard.workers == 2 and .shard.healthy == 2' >/dev/null ||
    { echo "coordinator does not see 2 healthy workers" >&2; curl -s "$COORD/metrics" >&2; exit 1; }

# --- sharded σ vs local σ: bit-identical -----------------------------
SIGMA_REQ='{"dataset":"amazon","scale":0.05,"budget":1000,"t":4,"mc":256,"seed":7,"seeds":[{"user":1,"item":0,"t":1},{"user":5,"item":2,"t":2}]}'
S_SHARD=$(curl -sf -X POST "$COORD/v1/sigma" -d "$SIGMA_REQ" | jq -r .sigma)
S_LOCAL=$(curl -sf -X POST "$LOCAL/v1/sigma" -d "$SIGMA_REQ" | jq -r .sigma)
[ "$S_SHARD" = "$S_LOCAL" ] ||
    { echo "sharded σ $S_SHARD != local σ $S_LOCAL" >&2; exit 1; }
echo "sigma OK: sharded == local == $S_SHARD"

# --- full sharded solve vs local solve: bit-identical ----------------
SOLVE_REQ='{"dataset":"amazon","scale":0.05,"budget":100,"t":4,"mc":8,"mcsi":4,"candidate_cap":64,"seed":1}'
solve_sigma() {
    local base=$1
    local job view status
    job=$(curl -sf -X POST "$base/v1/solve" -d "$SOLVE_REQ" | jq -r .job_id)
    for _ in $(seq 1 600); do
        view=$(curl -sf "$base/v1/jobs/$job")
        status=$(echo "$view" | jq -r .status)
        case "$status" in
            done) echo "$view" | jq -r .solution.sigma; return ;;
            failed | cancelled) echo "solve $status on $base: $view" >&2; return 1 ;;
        esac
        sleep 0.2
    done
    echo "solve never finished on $base" >&2
    return 1
}
SOLVE_SHARD=$(solve_sigma "$COORD")
SOLVE_LOCAL=$(solve_sigma "$LOCAL")
[ "$SOLVE_SHARD" = "$SOLVE_LOCAL" ] ||
    { echo "sharded solve σ $SOLVE_SHARD != local $SOLVE_LOCAL" >&2; exit 1; }
echo "solve OK: sharded == local == $SOLVE_SHARD"

# --- the fleet actually did the work ---------------------------------
SERVED1=$(curl -sf "$W1/metrics" | jq -r .shards_served)
SERVED2=$(curl -sf "$W2/metrics" | jq -r .shards_served)
TOTAL_SERVED=$((SERVED1 + SERVED2))
[ "$TOTAL_SERVED" -gt 0 ] || { echo "no shards reached the workers" >&2; exit 1; }
curl -sf "$COORD/metrics" | jq -e '.shard.local_fallbacks == 0' >/dev/null ||
    { echo "coordinator fell back to local compute" >&2; curl -s "$COORD/metrics" >&2; exit 1; }
echo "fleet OK: $TOTAL_SERVED shards served ($SERVED1 + $SERVED2)"

METRICS=$(curl -sf "$COORD/metrics")
echo "$METRICS" | jq -c "{ts: (now | floor), sigma: $SOLVE_SHARD, workers: .shard.workers,
    healthy: .shard.healthy, shards_served: $TOTAL_SERVED,
    redispatches: .shard.redispatches, samples_per_sec, samples_simulated,
    solve_seconds}" >>BENCH_shard.json
echo "shard smoke OK; appended to BENCH_shard.json:"
tail -1 BENCH_shard.json

#!/usr/bin/env bash
# Shard smoke: boots estimator workers plus two coordinators — one on
# the binary wire codec with weighted planning (the defaults), one
# pinned to JSON with static planning — and drives a sharded σ
# evaluation and a full sharded solve over HTTP through both. Every
# result must be bit-identical to a plain single-process daemon (the
# DESIGN.md §7 contract made observable end to end), the binary
# coordinator must spend ≥3× fewer wire bytes than the JSON one on the
# identical workload (§8), and the new wire/planning metrics
# (bytes_tx/bytes_rx, per-remote ewma_samples_per_sec,
# speculative_hits) must be present and sane. The shard throughput
# records — one from each coordinator's metrics, plus imdppbench's
# codec-tagged wire bench — are appended to BENCH_shard.json (one JSON
# object per line).
set -euo pipefail

cd "$(dirname "$0")/.."

WORKDIR=$(mktemp -d)
BIN="$WORKDIR/imdppd"
go build -o "$BIN" ./cmd/imdppd

PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

# boot <logfile> <args...>: starts imdppd, scrapes the readiness line,
# echoes the base URL
boot() {
    local log=$1
    shift
    "$BIN" -addr 127.0.0.1:0 "$@" >"$log" 2>&1 &
    PIDS+=($!)
    local addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's#^imdppd listening on ##p' "$log")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "imdppd ($*) never became ready:" >&2
        cat "$log" >&2
        exit 1
    fi
    echo "$addr"
}

W1=$(boot "$WORKDIR/worker1.log" -worker)
W2=$(boot "$WORKDIR/worker2.log" -worker)
LOCAL=$(boot "$WORKDIR/local.log" -workers 1)
COORD=$(boot "$WORKDIR/coord.log" -workers 1 -shard-workers "$W1,$W2" -debug-addr 127.0.0.1:0)
# the binary coordinator's opt-in debug listener (pprof + traces)
DEBUG=$(sed -n 's#^imdppd debug listening on ##p' "$WORKDIR/coord.log")
[ -n "$DEBUG" ] || { echo "coordinator printed no debug listener line" >&2; cat "$WORKDIR/coord.log" >&2; exit 1; }
COORDJ=$(boot "$WORKDIR/coordj.log" -workers 1 -shard-workers "$W1,$W2" -shard-codec json -shard-weighted=false -shard-speculate=false)
echo "workers at $W1 $W2; binary coordinator at $COORD; json coordinator at $COORDJ; local reference at $LOCAL"

curl -sf "$W1/healthz" | jq -e '.ok and .worker' >/dev/null
curl -sf "$COORD/metrics" | jq -e '.shard.workers == 2 and .shard.healthy == 2' >/dev/null ||
    { echo "binary coordinator does not see 2 healthy workers" >&2; curl -s "$COORD/metrics" >&2; exit 1; }
curl -sf "$COORD/metrics" | jq -e '.shard.codec == "binary" and .shard.weighted == true' >/dev/null ||
    { echo "binary coordinator misreports its codec/planner" >&2; curl -s "$COORD/metrics" >&2; exit 1; }
curl -sf "$COORDJ/metrics" | jq -e '.shard.codec == "json" and .shard.weighted == false' >/dev/null ||
    { echo "json coordinator misreports its codec/planner" >&2; curl -s "$COORDJ/metrics" >&2; exit 1; }

# --- sharded σ vs local σ: bit-identical in both codecs --------------
SIGMA_REQ='{"dataset":"amazon","scale":0.05,"budget":1000,"t":4,"mc":256,"seed":7,"seeds":[{"user":1,"item":0,"t":1},{"user":5,"item":2,"t":2}]}'
S_SHARD=$(curl -sf -X POST "$COORD/v1/sigma" -d "$SIGMA_REQ" | jq -r .sigma)
S_SHARDJ=$(curl -sf -X POST "$COORDJ/v1/sigma" -d "$SIGMA_REQ" | jq -r .sigma)
S_LOCAL=$(curl -sf -X POST "$LOCAL/v1/sigma" -d "$SIGMA_REQ" | jq -r .sigma)
[ "$S_SHARD" = "$S_LOCAL" ] ||
    { echo "binary sharded σ $S_SHARD != local σ $S_LOCAL" >&2; exit 1; }
[ "$S_SHARDJ" = "$S_LOCAL" ] ||
    { echo "json sharded σ $S_SHARDJ != local σ $S_LOCAL" >&2; exit 1; }
echo "sigma OK: binary == json == local == $S_SHARD"

# --- full sharded solve vs local solve: bit-identical ----------------
SOLVE_REQ='{"dataset":"amazon","scale":0.05,"budget":100,"t":4,"mc":8,"mcsi":4,"candidate_cap":64,"seed":1}'
solve_sigma() {
    local base=$1
    local job view status
    job=$(curl -sf -X POST "$base/v1/solve" -d "$SOLVE_REQ" | jq -r .job_id)
    for _ in $(seq 1 600); do
        view=$(curl -sf "$base/v1/jobs/$job")
        status=$(echo "$view" | jq -r .status)
        case "$status" in
            done) echo "$view" | jq -r .solution.sigma; return ;;
            failed | cancelled) echo "solve $status on $base: $view" >&2; return 1 ;;
        esac
        sleep 0.2
    done
    echo "solve never finished on $base" >&2
    return 1
}
SOLVE_SHARD=$(solve_sigma "$COORD")
SOLVE_SHARDJ=$(solve_sigma "$COORDJ")
SOLVE_LOCAL=$(solve_sigma "$LOCAL")
[ "$SOLVE_SHARD" = "$SOLVE_LOCAL" ] ||
    { echo "binary sharded solve σ $SOLVE_SHARD != local $SOLVE_LOCAL" >&2; exit 1; }
[ "$SOLVE_SHARDJ" = "$SOLVE_LOCAL" ] ||
    { echo "json sharded solve σ $SOLVE_SHARDJ != local $SOLVE_LOCAL" >&2; exit 1; }
echo "solve OK: binary == json == local == $SOLVE_SHARD"

# --- the fleet actually did the work ---------------------------------
SERVED1=$(curl -sf "$W1/metrics" | jq -r .shards_served)
SERVED2=$(curl -sf "$W2/metrics" | jq -r .shards_served)
TOTAL_SERVED=$((SERVED1 + SERVED2))
[ "$TOTAL_SERVED" -gt 0 ] || { echo "no shards reached the workers" >&2; exit 1; }
for c in "$COORD" "$COORDJ"; do
    curl -sf "$c/metrics" | jq -e '.shard.local_fallbacks == 0' >/dev/null ||
        { echo "coordinator $c fell back to local compute" >&2; curl -s "$c/metrics" >&2; exit 1; }
done
echo "fleet OK: $TOTAL_SERVED shards served ($SERVED1 + $SERVED2)"

# --- one joined trace across coordinator and workers (§11) -----------
TRACES=$(curl -sf "$DEBUG/debug/traces")
echo "$TRACES" | jq -e '
    ([.traces[] | select(
        ([.spans[].name] | index("shard_rpc"))
        and ([.spans[].name] | index("worker_estimate")))] | length) >= 1
    and all(.traces[]; .trace_id as $t | all(.spans[]; .trace_id == $t))' >/dev/null ||
    { echo "no joined coordinator+worker trace at $DEBUG/debug/traces" >&2; echo "$TRACES" >&2; exit 1; }
echo "trace OK: coordinator and worker spans joined under one trace id"
curl -sf "$COORD/metrics" | jq -e '.latency.shard_rpc.count >= 1 and .latency.shard_rpc.p50_ms >= 0' >/dev/null ||
    { echo "shard_rpc latency histogram empty on the coordinator" >&2; curl -s "$COORD/metrics" >&2; exit 1; }

# --- wire/planning metrics present and sane --------------------------
METRICS=$(curl -sf "$COORD/metrics")
METRICSJ=$(curl -sf "$COORDJ/metrics")
echo "$METRICS" | jq -e '.shard.bytes_tx > 0 and .shard.bytes_rx > 0 and .shard.speculative_hits >= 0' >/dev/null ||
    { echo "binary coordinator wire counters missing" >&2; echo "$METRICS" >&2; exit 1; }
echo "$METRICS" | jq -e '[.shard.remotes[] | select(.shards > 0 and .ewma_samples_per_sec > 0)] | length >= 1' >/dev/null ||
    { echo "no remote reports a throughput EWMA" >&2; echo "$METRICS" >&2; exit 1; }

# --- binary codec cuts wire bytes ≥3× on the identical workload ------
BYTES_BIN=$(echo "$METRICS" | jq -r '.shard.bytes_tx + .shard.bytes_rx')
BYTES_JSON=$(echo "$METRICSJ" | jq -r '.shard.bytes_tx + .shard.bytes_rx')
[ "$BYTES_JSON" -ge $((3 * BYTES_BIN)) ] ||
    { echo "binary codec saves too little: json=$BYTES_JSON binary=$BYTES_BIN (< 3x)" >&2; exit 1; }
echo "wire OK: json=$BYTES_JSON bytes, binary=$BYTES_BIN bytes ($((BYTES_JSON / BYTES_BIN))x)"

# --- trajectory records ----------------------------------------------
record() {
    local metrics=$1 sigma=$2
    echo "$metrics" | jq -c "{ts: (now | floor), sigma: $sigma, codec: .shard.codec,
        weighted: .shard.weighted, workers: .shard.workers, healthy: .shard.healthy,
        shards_served: $TOTAL_SERVED, redispatches: .shard.redispatches,
        speculative_hits: .shard.speculative_hits,
        bytes_tx: .shard.bytes_tx, bytes_rx: .shard.bytes_rx,
        samples_per_sec, samples_simulated, solve_seconds}" >>BENCH_shard.json
}
record "$METRICS" "$SOLVE_SHARD"
record "$METRICSJ" "$SOLVE_SHARDJ"
# and the imdppbench wire bench, one record per codec
go run ./cmd/imdppbench -fig shard -preset Amazon -scale 0.05 -mc 8 -shardout BENCH_shard.json
echo "shard smoke OK; appended to BENCH_shard.json:"
tail -4 BENCH_shard.json

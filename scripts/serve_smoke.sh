#!/usr/bin/env bash
# Serve-layer smoke: boots imdppd on a random port, drives one
# end-to-end session — async solve to completion, identical resubmit
# asserted to be a cache hit with bit-identical σ, two near-duplicate
# solves asserted to share sample grids via the daemon-wide grid cache
# (DESIGN.md §10), cancel endpoint asserted to abort a running solve —
# then appends the service throughput record to BENCH_serve.json (one
# JSON object per line).
set -euo pipefail

cd "$(dirname "$0")/.."

WORKDIR=$(mktemp -d)
BIN="$WORKDIR/imdppd"
LOG="$WORKDIR/imdppd.log"
go build -o "$BIN" ./cmd/imdppd

"$BIN" -addr 127.0.0.1:0 -workers 2 >"$LOG" 2>&1 &
PID=$!
cleanup() {
    kill "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

# readiness: the daemon prints its resolved address once listening
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#^imdppd listening on ##p' "$LOG")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "imdppd never became ready:" >&2
    cat "$LOG" >&2
    exit 1
fi
echo "imdppd at $ADDR"

curl -sf "$ADDR/healthz" | jq -e '.ok' >/dev/null

# small Amazon-scale solve (same shape as the solver smoke)
REQ='{"dataset":"amazon","scale":0.05,"budget":100,"t":4,"mc":8,"mcsi":4,"candidate_cap":64,"seed":1}'

R1=$(curl -sf -X POST "$ADDR/v1/solve" -d "$REQ")
JOB=$(echo "$R1" | jq -r .job_id)
[ "$(echo "$R1" | jq -r .cache_hit)" = "false" ] || { echo "cold submit claimed a cache hit: $R1" >&2; exit 1; }

STATUS=""
VIEW=""
for _ in $(seq 1 600); do
    VIEW=$(curl -sf "$ADDR/v1/jobs/$JOB")
    STATUS=$(echo "$VIEW" | jq -r .status)
    case "$STATUS" in
        done) break ;;
        failed | cancelled)
            echo "job $STATUS: $VIEW" >&2
            exit 1
            ;;
    esac
    sleep 0.2
done
[ "$STATUS" = done ] || { echo "solve never finished: $VIEW" >&2; exit 1; }
SIGMA1=$(echo "$VIEW" | jq -r .solution.sigma)
echo "solve done: σ = $SIGMA1"

# identical resubmit: O(1) cache hit, bit-identical σ (the §3
# determinism contract made observable over HTTP)
R2=$(curl -sf -X POST "$ADDR/v1/solve" -d "$REQ")
[ "$(echo "$R2" | jq -r .cache_hit)" = "true" ] || { echo "resubmit missed the cache: $R2" >&2; exit 1; }
JOB2=$(echo "$R2" | jq -r .job_id)
SIGMA2=$(curl -sf "$ADDR/v1/jobs/$JOB2" | jq -r .solution.sigma)
[ "$SIGMA1" = "$SIGMA2" ] || { echo "cached σ differs: $SIGMA1 vs $SIGMA2" >&2; exit 1; }
echo "cache hit: bit-identical σ"

# Sample-grid memoization across near-duplicate solves (DESIGN.md §10):
# two requests that differ from the first solve only in candidate_cap
# miss the whole-solve result cache, but share (problem, seed, group)
# coordinates with it, so the daemon-wide grid cache must report hits.
for CAP in 48 56; do
    REQN=$(echo "$REQ" | jq -c ".candidate_cap = $CAP")
    RN=$(curl -sf -X POST "$ADDR/v1/solve" -d "$REQN")
    [ "$(echo "$RN" | jq -r .cache_hit)" = "false" ] || { echo "near-duplicate hit the result cache: $RN" >&2; exit 1; }
    JN=$(echo "$RN" | jq -r .job_id)
    SN=""
    for _ in $(seq 1 600); do
        SN=$(curl -sf "$ADDR/v1/jobs/$JN" | jq -r .status)
        [ "$SN" = done ] && break
        case "$SN" in
            failed | cancelled)
                echo "near-duplicate job $SN" >&2
                exit 1
                ;;
        esac
        sleep 0.2
    done
    [ "$SN" = done ] || { echo "near-duplicate solve never finished" >&2; exit 1; }
done
GRID_HITS=$(curl -sf "$ADDR/metrics" | jq -r .grid.hits)
[ "$GRID_HITS" -gt 0 ] || { echo "grid cache reported no hits after near-duplicate solves" >&2; exit 1; }
echo "grid cache: $GRID_HITS hits across near-duplicate solves"

# cancel path: a heavy solve (≳30s uncancelled) aborted mid-run
HEAVY='{"dataset":"amazon","scale":0.05,"budget":100,"t":4,"mc":131072,"mcsi":4096,"candidate_cap":256,"seed":99}'
R3=$(curl -sf -X POST "$ADDR/v1/solve" -d "$HEAVY")
JOB3=$(echo "$R3" | jq -r .job_id)
for _ in $(seq 1 100); do
    [ "$(curl -sf "$ADDR/v1/jobs/$JOB3" | jq -r .status)" = running ] && break
    sleep 0.1
done
curl -sf -X DELETE "$ADDR/v1/jobs/$JOB3" >/dev/null
ST3=""
for _ in $(seq 1 50); do
    ST3=$(curl -sf "$ADDR/v1/jobs/$JOB3" | jq -r .status)
    [ "$ST3" = cancelled ] && break
    sleep 0.1
done
[ "$ST3" = cancelled ] || { echo "cancel never took effect (status $ST3)" >&2; exit 1; }
echo "cancel OK"

METRICS=$(curl -sf "$ADDR/metrics")
echo "$METRICS" | jq -e '.cache_hits >= 1 and .jobs_completed >= 2 and .jobs_cancelled >= 1 and .samples_per_sec > 0' >/dev/null ||
    { echo "metrics incoherent: $METRICS" >&2; exit 1; }

# latency histograms (DESIGN.md §11): every stage carries the full
# p50/p95/p99 snapshot, and the stages this session exercised count
echo "$METRICS" | jq -e '
    .latency.queue_wait.count >= 2 and .latency.solve_wall.count >= 2
    and ([.latency.queue_wait, .latency.solve_wall, .latency.shard_rpc, .latency.sigma]
         | all(has("p50_ms") and has("p95_ms") and has("p99_ms") and has("mean_ms")))' >/dev/null ||
    { echo "latency block incoherent: $(echo "$METRICS" | jq .latency)" >&2; exit 1; }
echo "latency histograms OK: $(echo "$METRICS" | jq -c '{queue_p50: .latency.queue_wait.p50_ms, solve_p50: .latency.solve_wall.p50_ms}')"

echo "$METRICS" | jq -c "{ts: (now | floor), sigma: $SIGMA1, samples_per_sec, samples_simulated, solve_seconds, jobs_completed, cache_hits, jobs_cancelled, coalesced}" >>BENCH_serve.json
echo "serve smoke OK; appended to BENCH_serve.json:"
tail -1 BENCH_serve.json

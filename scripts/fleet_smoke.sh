#!/usr/bin/env bash
# Fleet smoke (DESIGN.md §13): boots a dynamic coordinator plus three
# workers that register themselves, then subjects the fleet to the
# failures the elastic-membership layer exists for — a kill -9
# mid-solve, a SIGTERM graceful drain mid-solve, and a rejoin of the
# killed worker — asserting every solve stays bit-identical to a plain
# single-process daemon with zero failed jobs. Registration-time
# capability negotiation is asserted directly: each registered remote
# reports the binary codec BEFORE the coordinator has sent it a single
# estimate RPC (no per-request fallback probe). A SIGHUP re-reads the
# -tenant-quotas @file and swaps the scheduler quota table without
# dropping queued jobs. Appends a kind:"fleet" record to
# BENCH_shard.json.
set -euo pipefail

cd "$(dirname "$0")/.."

WORKDIR=$(mktemp -d)
BIN="$WORKDIR/imdppd"
go build -o "$BIN" ./cmd/imdppd

PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do
        kill -9 "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

# boot <logfile> <args...>: starts imdppd, scrapes the readiness line,
# echoes "pid url"
boot() {
    local log=$1
    shift
    "$BIN" "$@" >"$log" 2>&1 &
    local pid=$!
    PIDS+=($pid)
    local addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's#^imdppd listening on ##p' "$log")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "imdppd ($*) never became ready:" >&2
        cat "$log" >&2
        exit 1
    fi
    echo "$pid $addr"
}

# wait_jq <url> <jq-expr> <what>: polls until the expression is true
wait_jq() {
    local url=$1 expr=$2 what=$3
    for _ in $(seq 1 150); do
        if curl -sf "$url" | jq -e "$expr" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.2
    done
    echo "timeout waiting for: $what" >&2
    curl -s "$url" >&2 || true
    exit 1
}

echo "default:1:8:4" >"$WORKDIR/quotas"

read -r CPID COORD < <(boot "$WORKDIR/coord.log" -addr 127.0.0.1:0 -workers 1 \
    -shard-dynamic -shard-heartbeat 300ms -shard-probe 500ms \
    -tenant-quotas "@$WORKDIR/quotas")
read -r _ LOCAL < <(boot "$WORKDIR/local.log" -addr 127.0.0.1:0 -workers 1)
read -r _ W1 < <(boot "$WORKDIR/w1.log" -addr 127.0.0.1:0 -worker -register "$COORD")
read -r W2PID W2 < <(boot "$WORKDIR/w2.log" -addr 127.0.0.1:0 -worker -register "$COORD")
read -r W3PID W3 < <(boot "$WORKDIR/w3.log" -addr 127.0.0.1:0 -worker -register "$COORD")
echo "coordinator at $COORD; workers at $W1 $W2 $W3; local reference at $LOCAL"

wait_jq "$COORD/metrics" '.shard.fleet.registered == 3' "3 workers registered"

# --- negotiation happened at registration, not per request ----------
# zero estimate RPCs have been sent, yet every remote's codec is
# already settled to binary and its state alive: the capability
# advertisement replaced the old first-RPC fallback probe
curl -sf "$COORD/metrics" | jq -e '
    (.shard.remotes | length) == 3
    and all(.shard.remotes[]; .registered and .state == "alive" and .codec == "binary")' >/dev/null ||
    { echo "registration did not pre-negotiate caps" >&2; curl -s "$COORD/metrics" >&2; exit 1; }
echo "negotiation OK: 3 remotes alive with binary codec before any estimate RPC"

# solve_req <seed>: distinct seeds keep each solve out of the result
# cache — every churn scenario must do real fleet work, not replay a
# cached answer. Sized to run a few seconds so a kill or drain 0.5s
# in genuinely lands mid-solve.
solve_req() {
    echo "{\"dataset\":\"amazon\",\"scale\":0.5,\"budget\":800,\"t\":4,\"mc\":64,\"mcsi\":16,\"candidate_cap\":256,\"seed\":$1}"
}

# solve_async <base> <seed>: submits, echoes the job id
solve_async() {
    curl -sf -X POST "$1/v1/solve" -d "$(solve_req "$2")" | jq -r .job_id
}
# solve_wait <base> <job>: polls to completion, echoes σ
solve_wait() {
    local base=$1 job=$2 view status
    for _ in $(seq 1 600); do
        view=$(curl -sf "$base/v1/jobs/$job")
        status=$(echo "$view" | jq -r .status)
        case "$status" in
            done) echo "$view" | jq -r .solution.sigma; return ;;
            failed | cancelled) echo "solve $status: $view" >&2; return 1 ;;
        esac
        sleep 0.2
    done
    echo "solve never finished on $base" >&2
    return 1
}

# local reference answers, one per churn scenario (distinct seeds)
LOCAL1=$(solve_wait "$LOCAL" "$(solve_async "$LOCAL" 1)")
LOCAL2=$(solve_wait "$LOCAL" "$(solve_async "$LOCAL" 2)")
LOCAL3=$(solve_wait "$LOCAL" "$(solve_async "$LOCAL" 3)")

# --- kill -9 mid-solve ----------------------------------------------
JOB=$(solve_async "$COORD" 1)
# let the fleet pick up work, then kill a worker without ceremony
sleep 0.5
kill -9 "$W3PID"
SIGMA_KILL=$(solve_wait "$COORD" "$JOB")
[ "$SIGMA_KILL" = "$LOCAL1" ] ||
    { echo "kill -9 broke bit-identity: $SIGMA_KILL != $LOCAL1" >&2; exit 1; }
echo "kill OK: σ == local == $SIGMA_KILL"
wait_jq "$COORD/metrics" '.shard.fleet.suspect + .shard.fleet.dead >= 1' "killed worker detected"

# --- SIGTERM graceful drain mid-solve -------------------------------
JOB=$(solve_async "$COORD" 2)
sleep 0.5
kill -TERM "$W2PID"
SIGMA_DRAIN=$(solve_wait "$COORD" "$JOB")
[ "$SIGMA_DRAIN" = "$LOCAL2" ] ||
    { echo "drain broke bit-identity: $SIGMA_DRAIN != $LOCAL2" >&2; exit 1; }
wait "$W2PID" 2>/dev/null || true
# the drained worker deregistered on its way out: 2 registered remain
# (the kill -9 victim never deregisters — it is dead, not gone)
wait_jq "$COORD/metrics" '.shard.fleet.registered == 2' "drained worker deregistered"
echo "drain OK: σ == local == $SIGMA_DRAIN; worker deregistered cleanly"

# --- zero surfaced errors across all the churn ----------------------
curl -sf "$COORD/metrics" | jq -e '.jobs_failed == 0' >/dev/null ||
    { echo "fleet churn surfaced failed jobs" >&2; curl -s "$COORD/metrics" >&2; exit 1; }

# --- rejoin: restart the killed worker on its old address -----------
# re-registering the same URL revives the existing (dead) registry
# entry, so the fleet is back to 2 registered workers (the drained one
# deregistered for good), none dead, with a rejoin on the books
W3ADDR=${W3#http://}
read -r _ W3 < <(boot "$WORKDIR/w3b.log" -addr "$W3ADDR" -worker -register "$COORD")
wait_jq "$COORD/metrics" \
    '.shard.fleet.registered == 2 and .shard.fleet.rejoin_count >= 1 and .shard.fleet.dead == 0' \
    "killed worker rejoined"
SIGMA_REJOIN=$(solve_wait "$COORD" "$(solve_async "$COORD" 3)")
[ "$SIGMA_REJOIN" = "$LOCAL3" ] ||
    { echo "rejoin broke bit-identity: $SIGMA_REJOIN != $LOCAL3" >&2; exit 1; }
echo "rejoin OK: worker back in rotation, σ == local == $SIGMA_REJOIN"

# --- SIGHUP swaps the quota table without a restart -----------------
echo "default:1:3:4" >"$WORKDIR/quotas"
kill -HUP "$CPID"
wait_jq "$COORD/metrics" '.tenants.default.max_queue == 3' "quota reload applied"
echo "reload OK: default tenant max_queue 8 -> 3 via SIGHUP"

# --- trajectory record ----------------------------------------------
METRICS=$(curl -sf "$COORD/metrics")
echo "$METRICS" | jq -c --arg sigma "$SIGMA_REJOIN" '{ts: (now | floor), kind: "fleet",
    sigma: ($sigma | tonumber), registered: .shard.fleet.registered,
    heartbeats: .shard.fleet.heartbeats, rejoin_count: .shard.fleet.rejoin_count,
    breaker_open: .shard.fleet.breaker_open, redispatches: .shard.redispatches,
    local_fallbacks: .shard.local_fallbacks, jobs_failed,
    samples_per_sec, samples_simulated, solve_seconds}' >>BENCH_shard.json
echo "fleet smoke OK; appended to BENCH_shard.json:"
tail -1 BENCH_shard.json

#!/usr/bin/env bash
# Load smoke (DESIGN.md §11): N concurrent clients against one imdppd,
# each submitting a distinct-seeded solve so nothing coalesces or hits
# the result cache — every client pays a real solve and the job queue
# actually backs up. Asserts the latency histograms observed at least
# one queue-wait and one solve-wall sample per client, then appends the
# p50/p99 latency record (kind: "load") to BENCH_serve.json so the
# perf trajectory tracks tail latency alongside throughput.
set -euo pipefail

cd "$(dirname "$0")/.."

CLIENTS=${CLIENTS:-6}
WORKDIR=$(mktemp -d)
BIN="$WORKDIR/imdppd"
LOG="$WORKDIR/imdppd.log"
go build -o "$BIN" ./cmd/imdppd

"$BIN" -addr 127.0.0.1:0 -workers 2 >"$LOG" 2>&1 &
PID=$!
cleanup() {
    kill "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

# readiness: the daemon prints its resolved address once listening
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#^imdppd listening on ##p' "$LOG")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "imdppd never became ready:" >&2
    cat "$LOG" >&2
    exit 1
fi
echo "imdppd at $ADDR ($CLIENTS concurrent clients)"

# submit everything up front: distinct seeds defeat coalescing and the
# result cache, so CLIENTS solves contend for 2 workers
JOBS=()
for i in $(seq 1 "$CLIENTS"); do
    REQ=$(jq -nc --argjson s "$i" \
        '{dataset: "amazon", scale: 0.05, budget: 100, t: 4, mc: 8, mcsi: 4, candidate_cap: 48, seed: $s}')
    R=$(curl -sf -X POST "$ADDR/v1/solve" -d "$REQ")
    [ "$(echo "$R" | jq -r .cache_hit)" = "false" ] || { echo "distinct-seed submit hit the cache: $R" >&2; exit 1; }
    JOBS+=("$(echo "$R" | jq -r .job_id)")
done

for JOB in "${JOBS[@]}"; do
    ST=""
    for _ in $(seq 1 600); do
        ST=$(curl -sf "$ADDR/v1/jobs/$JOB" | jq -r .status)
        [ "$ST" = done ] && break
        case "$ST" in
            failed | cancelled)
                echo "job $JOB finished $ST" >&2
                exit 1
                ;;
        esac
        sleep 0.2
    done
    [ "$ST" = done ] || { echo "job $JOB never finished" >&2; exit 1; }
done
echo "all $CLIENTS solves done"

METRICS=$(curl -sf "$ADDR/metrics")
echo "$METRICS" | jq -e --argjson n "$CLIENTS" '
    .jobs_completed >= $n
    and .latency.queue_wait.count >= $n
    and .latency.solve_wall.count >= $n
    and .latency.solve_wall.p99_ms >= .latency.solve_wall.p50_ms' >/dev/null ||
    { echo "latency counters below client count: $(echo "$METRICS" | jq .latency)" >&2; exit 1; }

echo "$METRICS" | jq -c --argjson n "$CLIENTS" '{
    ts: (now | floor), kind: "load", clients: $n,
    p50_queue_ms: .latency.queue_wait.p50_ms, p99_queue_ms: .latency.queue_wait.p99_ms,
    p50_solve_ms: .latency.solve_wall.p50_ms, p99_solve_ms: .latency.solve_wall.p99_ms,
    samples_per_sec, samples_simulated, jobs_completed}' >>BENCH_serve.json
echo "load smoke OK; appended to BENCH_serve.json:"
tail -1 BENCH_serve.json

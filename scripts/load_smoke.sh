#!/usr/bin/env bash
# Load smoke (DESIGN.md §11): N concurrent clients against one imdppd,
# each submitting a distinct-seeded solve so nothing coalesces or hits
# the result cache — every client pays a real solve and the job queue
# actually backs up. Asserts the latency histograms observed at least
# one queue-wait and one solve-wall sample per client, then appends the
# p50/p99 latency record (kind: "load") to BENCH_serve.json so the
# perf trajectory tracks tail latency alongside throughput.
#
# A second multi-tenant phase (DESIGN.md §12) restarts the daemon with
# -tenant-quotas: one greedy tenant (weight 1, tiny queue, one job in
# flight) floods submissions while two light tenants (weight 4) trickle
# theirs. Asserts the greedy flood is shed with typed quota_exceeded
# 429s bearing Retry-After, the light tenants' p99 queue wait stays
# bounded despite the flood, and appends the kind: "load_mt" record so
# the fairness trajectory is tracked alongside the single-tenant one.
set -euo pipefail

cd "$(dirname "$0")/.."

CLIENTS=${CLIENTS:-6}
WORKDIR=$(mktemp -d)
BIN="$WORKDIR/imdppd"
LOG="$WORKDIR/imdppd.log"
go build -o "$BIN" ./cmd/imdppd

"$BIN" -addr 127.0.0.1:0 -workers 2 >"$LOG" 2>&1 &
PID=$!
cleanup() {
    kill "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

# readiness: the daemon prints its resolved address once listening
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#^imdppd listening on ##p' "$LOG")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "imdppd never became ready:" >&2
    cat "$LOG" >&2
    exit 1
fi
echo "imdppd at $ADDR ($CLIENTS concurrent clients)"

# submit everything up front: distinct seeds defeat coalescing and the
# result cache, so CLIENTS solves contend for 2 workers
JOBS=()
for i in $(seq 1 "$CLIENTS"); do
    REQ=$(jq -nc --argjson s "$i" \
        '{dataset: "amazon", scale: 0.05, budget: 100, t: 4, mc: 8, mcsi: 4, candidate_cap: 48, seed: $s}')
    R=$(curl -sf -X POST "$ADDR/v1/solve" -d "$REQ")
    [ "$(echo "$R" | jq -r .cache_hit)" = "false" ] || { echo "distinct-seed submit hit the cache: $R" >&2; exit 1; }
    JOBS+=("$(echo "$R" | jq -r .job_id)")
done

for JOB in "${JOBS[@]}"; do
    ST=""
    for _ in $(seq 1 600); do
        ST=$(curl -sf "$ADDR/v1/jobs/$JOB" | jq -r .status)
        [ "$ST" = done ] && break
        case "$ST" in
            failed | cancelled)
                echo "job $JOB finished $ST" >&2
                exit 1
                ;;
        esac
        sleep 0.2
    done
    [ "$ST" = done ] || { echo "job $JOB never finished" >&2; exit 1; }
done
echo "all $CLIENTS solves done"

METRICS=$(curl -sf "$ADDR/metrics")
echo "$METRICS" | jq -e --argjson n "$CLIENTS" '
    .jobs_completed >= $n
    and .latency.queue_wait.count >= $n
    and .latency.solve_wall.count >= $n
    and .latency.solve_wall.p99_ms >= .latency.solve_wall.p50_ms' >/dev/null ||
    { echo "latency counters below client count: $(echo "$METRICS" | jq .latency)" >&2; exit 1; }

echo "$METRICS" | jq -c --argjson n "$CLIENTS" '{
    ts: (now | floor), kind: "load", clients: $n,
    p50_queue_ms: .latency.queue_wait.p50_ms, p99_queue_ms: .latency.queue_wait.p99_ms,
    p50_solve_ms: .latency.solve_wall.p50_ms, p99_solve_ms: .latency.solve_wall.p99_ms,
    samples_per_sec, samples_simulated, jobs_completed}' >>BENCH_serve.json
echo "load smoke OK; appended to BENCH_serve.json:"
tail -1 BENCH_serve.json

# ---- multi-tenant phase: greedy flood vs light tenants ---------------
kill "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

GREEDY=${GREEDY:-12}
LIGHT=${LIGHT:-3} # jobs per light tenant
"$BIN" -addr 127.0.0.1:0 -workers 2 \
    -tenant-quotas 'greedy:1:4:1,light1:4,light2:4' >"$LOG" 2>&1 &
PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's#^imdppd listening on ##p' "$LOG")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "multi-tenant imdppd never became ready:" >&2; cat "$LOG" >&2; exit 1; }
echo "multi-tenant imdppd at $ADDR (greedy flood $GREEDY, light 2x$LIGHT)"

MT_JOBS=()
SHED=0
# the greedy tenant floods: weight 1, max_queue 4, one job in flight —
# admissions beyond its queue bound must shed with typed 429s. The
# greedy solves are deliberately heavy (big sample counts) so its
# one-at-a-time drain cannot keep up with the flood
for i in $(seq 1 "$GREEDY"); do
    REQ=$(jq -nc --argjson s "$((100 + i))" \
        '{dataset: "amazon", scale: 0.05, budget: 100, t: 4, mc: 8192, mcsi: 512, candidate_cap: 64, seed: $s}')
    BODY=$(curl -s -X POST -H 'X-IMDPP-Tenant: greedy' "$ADDR/v1/solve" -d "$REQ")
    if [ "$(echo "$BODY" | jq -r '.code // empty')" = quota_exceeded ]; then
        SHED=$((SHED + 1))
        RA=$(echo "$BODY" | jq -r '.retry_after_seconds // 0')
        [ "$RA" -ge 1 ] || { echo "shed without Retry-After: $BODY" >&2; exit 1; }
    else
        JOB=$(echo "$BODY" | jq -r '.job_id // empty')
        [ -n "$JOB" ] || { echo "greedy submit neither accepted nor typed-shed: $BODY" >&2; exit 1; }
        MT_JOBS+=("$JOB")
    fi
done
# the light tenants trickle; all must be admitted despite the flood.
# Seeds stay distinct across the two tenants — the content address
# ignores tenancy, so equal-seed requests would coalesce across them
OFFSET=200
for TEN in light1 light2; do
    OFFSET=$((OFFSET + 100))
    for i in $(seq 1 "$LIGHT"); do
        REQ=$(jq -nc --argjson s "$((OFFSET + i))" --arg ten "$TEN" \
            '{dataset: "amazon", scale: 0.05, budget: 100, t: 4, mc: 8, mcsi: 4, candidate_cap: 48, seed: $s, tenant: $ten}')
        R=$(curl -sf -X POST "$ADDR/v1/solve" -d "$REQ")
        MT_JOBS+=("$(echo "$R" | jq -r .job_id)")
    done
done
[ "$SHED" -ge 1 ] || { echo "greedy flood of $GREEDY was never shed" >&2; exit 1; }
echo "greedy shed $SHED of $GREEDY; light tenants all admitted"

for JOB in "${MT_JOBS[@]}"; do
    ST=""
    for _ in $(seq 1 600); do
        ST=$(curl -sf "$ADDR/v1/jobs/$JOB" | jq -r .status)
        [ "$ST" = done ] && break
        case "$ST" in
            failed | cancelled)
                echo "job $JOB finished $ST" >&2
                exit 1
                ;;
        esac
        sleep 0.2
    done
    [ "$ST" = done ] || { echo "job $JOB never finished" >&2; exit 1; }
done

MT=$(curl -sf "$ADDR/metrics")
# per-tenant accounting must be exact, and the light tenants' tail
# queue wait must stay bounded next to the greedy backlog: weighted
# fair scheduling is the whole point of the phase
echo "$MT" | jq -e --argjson shed "$SHED" --argjson light "$LIGHT" '
    .tenants.greedy.shed_quota == $shed
    and .tenants.light1.queue_wait.count >= $light
    and .tenants.light2.queue_wait.count >= $light
    and ([.tenants.light1.queue_wait.p99_ms, .tenants.light2.queue_wait.p99_ms] | max) <=
        ([.tenants.greedy.queue_wait.p99_ms, 1000] | max)' >/dev/null ||
    { echo "tenant fairness assertions failed: $(echo "$MT" | jq .tenants)" >&2; exit 1; }

echo "$MT" | jq -c --argjson greedy "$GREEDY" --argjson shed "$SHED" --argjson light "$((2 * LIGHT))" '{
    ts: (now | floor), kind: "load_mt", greedy: $greedy, greedy_shed: $shed, light_jobs: $light,
    greedy_p99_queue_ms: .tenants.greedy.queue_wait.p99_ms,
    light_p99_queue_ms: ([.tenants.light1.queue_wait.p99_ms, .tenants.light2.queue_wait.p99_ms] | max),
    samples_per_sec, samples_simulated, jobs_completed}' >>BENCH_serve.json
echo "multi-tenant load smoke OK; appended to BENCH_serve.json:"
tail -1 BENCH_serve.json

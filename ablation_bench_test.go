package imdpp

// Ablation benchmarks for the engineering design choices DESIGN.md
// calls out (not paper figures): the nominee-clustering strategy, the
// AIS form used in π, and the CELF laziness of nominee selection.

import (
	"testing"

	"imdpp/internal/cluster"
	"imdpp/internal/core"
	"imdpp/internal/dataset"
	"imdpp/internal/diffusion"
)

func ablationProblem(b *testing.B) *diffusion.Problem {
	d, err := dataset.Amazon(0.25)
	if err != nil {
		b.Fatal(err)
	}
	return d.Clone(300, 5)
}

// BenchmarkAblationClusterStrategy compares the POT-like proximity
// clustering against the FGCC-like co-clustering inside a full Dysim
// solve.
func BenchmarkAblationClusterStrategy(b *testing.B) {
	for _, tc := range []struct {
		name string
		s    cluster.Strategy
	}{
		{"Proximity", cluster.Proximity},
		{"CoCluster", cluster.CoCluster},
	} {
		b.Run(tc.name, func(b *testing.B) {
			p := ablationProblem(b)
			eval := diffusion.NewEstimator(p, 32, 0xE)
			for i := 0; i < b.N; i++ {
				sol, err := core.Solve(p, core.Options{
					MC: 8, MCSI: 4, CandidateCap: 64, Seed: 1,
					Cluster: cluster.Options{Strategy: tc.s, MaxHops: 1, MinRelGap: 0.02},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(eval.Sigma(sol.Seeds), "sigma")
				b.ReportMetric(float64(sol.Stats.MarketCount), "markets")
			}
		})
	}
}

// BenchmarkAblationAISModel compares the IC and LT forms of the
// aggregated influence in π (footnote 31) through TDSI.
func BenchmarkAblationAISModel(b *testing.B) {
	for _, tc := range []struct {
		name string
		ais  diffusion.AISModel
	}{
		{"IC", diffusion.AISIndependentCascade},
		{"LT", diffusion.AISLinearThreshold},
	} {
		b.Run(tc.name, func(b *testing.B) {
			p := ablationProblem(b)
			p.Params.AIS = tc.ais
			eval := diffusion.NewEstimator(p, 32, 0xE)
			for i := 0; i < b.N; i++ {
				sol, err := core.Solve(p, core.Options{MC: 8, MCSI: 4, CandidateCap: 64, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(eval.Sigma(sol.Seeds), "sigma")
			}
		})
	}
}

// BenchmarkAblationAdaptive compares planned Dysim with the adaptive
// variant of Sec. V-D under the same budget.
func BenchmarkAblationAdaptive(b *testing.B) {
	for _, tc := range []struct {
		name  string
		solve func(*diffusion.Problem, core.Options) (core.Solution, error)
	}{
		{"Planned", core.Solve},
		{"Adaptive", core.SolveAdaptive},
	} {
		b.Run(tc.name, func(b *testing.B) {
			p := ablationProblem(b)
			eval := diffusion.NewEstimator(p, 32, 0xE)
			for i := 0; i < b.N; i++ {
				sol, err := tc.solve(p, core.Options{MC: 8, MCSI: 4, CandidateCap: 32, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(eval.Sigma(sol.Seeds), "sigma")
			}
		})
	}
}

// Adaptive: compares the standard Dysim plan (all timings decided
// upfront) against the adaptive variant of Sec. V-D, which selects
// seeds promotion-by-promotion after observing the diffusion, with no
// predefined budget allocation across promotions.
package main

import (
	"fmt"
	"log"

	"imdpp"
)

func main() {
	d, err := imdpp.YelpDataset(0.5)
	if err != nil {
		log.Fatal(err)
	}
	p := d.Clone(150, 4)

	planned, err := imdpp.Solve(p, imdpp.Options{Seed: 5, CandidateCap: 128})
	if err != nil {
		log.Fatal(err)
	}
	adaptive, err := imdpp.SolveAdaptive(p, imdpp.Options{Seed: 5, CandidateCap: 64})
	if err != nil {
		log.Fatal(err)
	}

	est := imdpp.NewEstimator(p, 200, 123)
	sp := est.Sigma(planned.Seeds)
	sa := est.Sigma(adaptive.Seeds)

	fmt.Printf("planned : %2d seeds, cost %6.1f, σ = %.1f\n", len(planned.Seeds), planned.Cost, sp)
	fmt.Printf("adaptive: %2d seeds, cost %6.1f, σ = %.1f\n", len(adaptive.Seeds), adaptive.Cost, sa)

	timings := func(seeds []imdpp.Seed) map[int]int {
		m := map[int]int{}
		for _, s := range seeds {
			m[s.T]++
		}
		return m
	}
	fmt.Printf("planned timings : %v\n", timings(planned.Seeds))
	fmt.Printf("adaptive timings: %v\n", timings(adaptive.Seeds))
}

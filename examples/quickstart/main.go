// Quickstart: build a synthetic Amazon-shaped workload, plan a
// 10-promotion campaign with Dysim under a budget, and report the
// influence spread of the chosen seed group.
package main

import (
	"fmt"
	"log"

	"imdpp"
)

func main() {
	// A scaled-down Amazon-shaped dataset: directed friendships, a
	// 6-type knowledge graph, price-like item importance.
	d, err := imdpp.AmazonDataset(0.5)
	if err != nil {
		log.Fatal(err)
	}
	st := d.Stats()
	fmt.Printf("dataset %s: %d users, %d items, %d friendships\n",
		st.Name, st.Users, st.Items, st.Friendships)

	// Plan a campaign: budget 300 across T = 5 promotions.
	p := d.Clone(300, 5)
	sol, err := imdpp.Solve(p, imdpp.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Dysim selected %d seeds (cost %.1f of budget %.0f) in %v\n",
		len(sol.Seeds), sol.Cost, p.Budget, sol.Stats.TotalTime)
	fmt.Printf("identified %d target markets in %d overlap groups\n",
		sol.Stats.MarketCount, sol.Stats.GroupCount)

	// Schedule: which item is promoted by whom, when.
	byPromo := map[int]int{}
	for _, s := range sol.Seeds {
		byPromo[s.T]++
	}
	for t := 1; t <= p.T; t++ {
		if byPromo[t] > 0 {
			fmt.Printf("  promotion %d: %d seeds\n", t, byPromo[t])
		}
	}

	// Evaluate the seed group with a high-sample estimator.
	est := imdpp.NewEstimator(p, 200, 7)
	run := est.Run(sol.Seeds, nil, false)
	fmt.Printf("influence spread σ = %.1f (%.1f adoptions/campaign)\n",
		run.Sigma, run.Adoptions)
}

// Courses: the paper's empirical study (Sec. VI-E) — viral marketing
// of 30 elective courses to five classes of students. Each class runs
// a campaign with budget 50 and T = 3; the goal is maximizing the
// number of course selections. Students are simulated (the original
// study recruited real classes); class sizes follow Table III.
package main

import (
	"fmt"
	"log"

	"imdpp"
)

func main() {
	total := 0.0
	for _, spec := range imdpp.ClassSpecs() {
		d, err := imdpp.BuildClass(spec, 1)
		if err != nil {
			log.Fatal(err)
		}
		p := d.Clone(50, 3)
		sol, err := imdpp.Solve(p, imdpp.Options{Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		est := imdpp.NewEstimator(p, 200, 99)
		run := est.Run(sol.Seeds, nil, false)
		fmt.Printf("class %s (%d students): %d seeds, %.1f expected course selections\n",
			spec.ID, spec.Users, len(sol.Seeds), run.Sigma)
		// which courses were promoted?
		promoted := map[int]bool{}
		for _, s := range sol.Seeds {
			promoted[s.Item] = true
		}
		fmt.Print("  promoted:")
		for x := 0; x < p.NumItems(); x++ {
			if promoted[x] {
				fmt.Printf(" %s", courseName(x))
			}
		}
		fmt.Println()
		total += run.Sigma
	}
	fmt.Printf("total expected selections across classes: %.1f\n", total)
}

// courseName resolves the human-readable name through the dataset
// package's course list.
func courseName(x int) string {
	return imdpp.CourseName(x)
}

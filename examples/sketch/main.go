// Sketch: evaluates the same σ-query workload with the exact
// Monte-Carlo estimator and the (ε, δ)-approximate reverse-reachable
// sketch backend side by side (DESIGN.md §9), printing the observed σ
// error against the additive ε·n·W bound and the query speedup. The
// sketch exists for exactly this shape of work — triaging many
// candidate seed groups cheaply before an exact solve; over HTTP the
// same switch is the optional "epsilon"/"delta" fields of POST
// /v1/solve and POST /v1/sigma.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"imdpp"
)

func main() {
	d, err := imdpp.YelpDataset(0.5)
	if err != nil {
		log.Fatal(err)
	}
	p := d.Clone(150, 4)
	// The (ε, δ) contract is stated for the static diffusion regime,
	// where RR coverage is an unbiased σ estimator (DESIGN.md §9).
	p.Params.Static = true

	sol, err := imdpp.Solve(p, imdpp.Options{Seed: 5, CandidateCap: 64})
	if err != nil {
		log.Fatal(err)
	}

	// The triage workload: the solver's pick plus user-rotated variants.
	groups := [][]imdpp.Seed{sol.Seeds}
	for r := 1; r <= 15; r++ {
		g := make([]imdpp.Seed, len(sol.Seeds))
		for i, s := range sol.Seeds {
			g[i] = imdpp.Seed{User: (s.User + r) % p.NumUsers(), Item: s.Item, T: s.T}
		}
		groups = append(groups, g)
	}

	const evalMC = 200
	mc := imdpp.NewEstimator(p, evalMC, 123)
	t0 := time.Now()
	exact := mc.SigmaBatch(groups)
	mcDur := time.Since(t0)

	const eps, delta = 0.05, 0.05
	sk := imdpp.NewSketchEstimator(p, imdpp.SketchConfig{Epsilon: eps, Delta: delta}, evalMC, 123, 0)
	t0 = time.Now()
	if err := sk.Warm(); err != nil {
		log.Fatal(err)
	}
	buildDur := time.Since(t0)
	t0 = time.Now()
	approx := sk.SigmaBatch(groups)
	queryDur := time.Since(t0)

	var wsum float64
	for _, w := range p.Importance {
		wsum += w
	}
	bound := eps * float64(p.NumUsers()) * wsum
	var worst float64
	for i := range groups {
		if diff := math.Abs(approx[i] - exact[i]); diff > worst {
			worst = diff
		}
	}

	fmt.Printf("θ = %d RR samples for (ε, δ) = (%.2f, %.2f)\n", imdpp.SketchTheta(eps, delta), eps, delta)
	fmt.Printf("MC   : %2d groups × %d samples in %v  (σ₀ = %.1f)\n", len(groups), evalMC, mcDur.Round(time.Millisecond), exact[0])
	fmt.Printf("sketch: build %v, %2d σ queries in %v  (σ₀ = %.1f)\n", buildDur.Round(time.Millisecond), len(groups), queryDur.Round(time.Microsecond), approx[0])
	fmt.Printf("worst |σ_sketch − σ_mc| = %.1f, within the additive bound ε·n·W = %.1f\n", worst, bound)
	if secs := queryDur.Seconds(); secs > 0 {
		fmt.Printf("query speedup ≈ %.0f× (the build costs %.1f MC queries' worth of time)\n",
			mcDur.Seconds()/secs, buildDur.Seconds()/(mcDur.Seconds()/float64(len(groups))))
	}
}

// Campaign: the paper's motivating scenario — a vendor launching an
// ecosystem of relevant items (think iPhone → AirPods → wireless
// charger) over a sequence of promotions. This example builds a custom
// dataset spec, runs Dysim and the BGRD bundle baseline under the same
// budget, and shows how exploiting item relationships and promotional
// timing changes the outcome.
package main

import (
	"fmt"
	"log"

	"imdpp"
)

func main() {
	// A boutique ecosystem: few brands, strong cross-category
	// complements (ecosystems), substitutable rivals per category.
	spec := imdpp.DatasetSpec{
		Name: "EcosystemLaunch", Users: 400, Items: 36,
		Directed: false, AttachM: 4, AvgInfluence: 0.1,
		Features: 16, Brands: 4, Categories: 6, Ecosystems: 5,
		Extended:      true,
		AvgImportance: 2.0,
		Params:        imdpp.DefaultParams(),
		Seed:          2026,
	}
	d, err := imdpp.GenerateDataset(spec)
	if err != nil {
		log.Fatal(err)
	}
	p := d.Clone(250, 6)

	sol, err := imdpp.Solve(p, imdpp.Options{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Dysim: %d seeds, cost %.1f, %d target markets\n",
		len(sol.Seeds), sol.Cost, sol.Stats.MarketCount)
	schedule := map[int][]int{}
	for _, s := range sol.Seeds {
		schedule[s.T] = append(schedule[s.T], s.Item)
	}
	for t := 1; t <= p.T; t++ {
		if items := schedule[t]; len(items) > 0 {
			fmt.Printf("  promotion %d promotes items %v\n", t, dedupe(items))
		}
	}

	bgrd, err := imdpp.BGRD(p, imdpp.BaselineOptions{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}

	// Fair comparison: same estimator for both seed groups.
	est := imdpp.NewEstimator(p, 200, 777)
	sd := est.Sigma(sol.Seeds)
	sb := est.Sigma(bgrd.Seeds)
	fmt.Printf("σ(Dysim) = %.1f   σ(BGRD bundle) = %.1f   ratio %.2fx\n",
		sd, sb, sd/sb)
}

func dedupe(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

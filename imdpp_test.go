package imdpp

import "testing"

// TestPublicAPIRoundTrip exercises the facade the way a downstream
// user would: build a dataset, solve, evaluate, compare to a baseline.
func TestPublicAPIRoundTrip(t *testing.T) {
	d, err := AmazonSampleDataset()
	if err != nil {
		t.Fatal(err)
	}
	p := d.Clone(100, 2)
	sol, err := Solve(p, Options{MC: 8, MCSI: 4, CandidateCap: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Seeds) == 0 || sol.Cost > p.Budget {
		t.Fatalf("solution: %+v", sol)
	}
	est := NewEstimator(p, 50, 9)
	if sigma := est.Sigma(sol.Seeds); sigma <= 0 {
		t.Fatalf("sigma %v", sigma)
	}
	bl, err := PS(p, BaselineOptions{MC: 8, Seed: 3, CandidateCap: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(bl.Seeds) == 0 {
		t.Fatal("baseline selected nothing")
	}
}

func TestPublicAPIDatasets(t *testing.T) {
	for _, build := range []func(Scale) (*Dataset, error){
		AmazonDataset, YelpDataset, DoubanDataset, GowallaDataset,
	} {
		d, err := build(0.15)
		if err != nil {
			t.Fatal(err)
		}
		st := d.Stats()
		if st.Users == 0 || st.Items == 0 {
			t.Fatalf("degenerate dataset %s", st.Name)
		}
	}
}

func TestPublicAPIClasses(t *testing.T) {
	specs := ClassSpecs()
	if len(specs) != 5 {
		t.Fatalf("%d classes", len(specs))
	}
	d, err := BuildClass(specs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Problem.KG.NumItems() != 30 {
		t.Fatalf("courses: %d", d.Problem.KG.NumItems())
	}
	if CourseName(0) == "" {
		t.Fatal("no course name")
	}
}

func TestPublicAPIState(t *testing.T) {
	d, err := AmazonSampleDataset()
	if err != nil {
		t.Fatal(err)
	}
	p := d.Clone(100, 1)
	st := NewState(p)
	est := NewEstimator(p, 10, 1)
	_ = est.Run(nil, nil, false)
	if st.Problem() != p {
		t.Fatal("state problem mismatch")
	}
	if DefaultParams().MaxSteps <= 0 {
		t.Fatal("bad default params")
	}
}
